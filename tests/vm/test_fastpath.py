"""The verified VM fast path (yield elision over proven-LOCAL spans):
byte-identical observable surfaces with the fast path on vs off, real
elision on compute-dense programs, replay fidelity, and clean obs
accounting (zero meta-counter leak when the fast path is off)."""

from __future__ import annotations

import pytest

from repro import Machine, obs, compile_program
from repro.analysis.racecands import candidates_from_compiled, refine_with_effects
from repro.core import EmulationPackage
from repro.runtime import Postlog, build_interval_index
from repro.workloads import (
    bank_race,
    buggy_average,
    compute_heavy,
    fib_recursive,
    matrix_sum,
    producer_consumer,
)

from tests.vm.util import surface

CASES = [
    ("bank_race", bank_race(2, 2), None),
    ("buggy_average", buggy_average(5), [10, 20, 30, 40, 50]),
    ("compute_heavy", compute_heavy(3, 4), None),
    ("fib_recursive", fib_recursive(6), None),
    ("matrix_sum", matrix_sum(4), None),
    ("producer_consumer", producer_consumer(3, 1), None),
]


def run(source, *, fastpath, seed=0, mode="logged", trace=True, inputs=None):
    return Machine(
        compile_program(source),
        seed=seed,
        mode=mode,
        trace=trace,
        inputs=list(inputs) if inputs else None,
        engine="vm",
        fastpath=fastpath,
    ).run()


@pytest.mark.parametrize("name,source,inputs", CASES, ids=[c[0] for c in CASES])
@pytest.mark.parametrize("seed", [0, 7])
def test_surface_identical_on_vs_off(name, source, inputs, seed):
    on = run(source, fastpath=True, seed=seed, inputs=inputs)
    off = run(source, fastpath=False, seed=seed, inputs=inputs)
    assert surface(on) == surface(off)


def test_elision_actually_happens_on_compute_dense_code():
    machine = Machine(
        compile_program(compute_heavy(3, 4)),
        seed=0,
        mode="plain",
        engine="vm",
        fastpath=True,
    )
    record = machine.run()
    assert machine.fastpath_elided > 0
    # Elided steps still count: total_steps is fastpath-invariant.
    off = run(compute_heavy(3, 4), fastpath=False, mode="plain", trace=False)
    assert record.total_steps == off.total_steps


def test_elision_is_disabled_while_other_processes_are_ready():
    """With two runnable processes the schedule is never pre-committed,
    so the fast path must not elide a single yield."""
    machine = Machine(
        compile_program(bank_race(2, 2)),
        seed=0,
        mode="plain",
        engine="vm",
        fastpath=True,
    )
    record = machine.run()
    off = run(bank_race(2, 2), fastpath=False, mode="plain", trace=False)
    assert record.total_steps == off.total_steps
    assert surface(record)["shared_final"] == surface(off)["shared_final"]


def test_interp_engine_ignores_fastpath_flag():
    machine = Machine(
        compile_program(compute_heavy(2, 2)),
        seed=0,
        mode="plain",
        engine="interp",
        fastpath=True,
    )
    machine.run()
    assert machine.fastpath is False
    assert machine.fastpath_elided == 0


def test_replay_fidelity_under_fastpath():
    """Every closed interval of a fastpath-logged record replays without
    divergence and reproduces its recorded return value."""
    record = run(compute_heavy(3, 4), fastpath=True)
    assert record.failure is None
    emulation = EmulationPackage(record)
    index = build_interval_index(record.logs[0])
    base = 0
    for info in index.values():
        if info.is_open:
            continue
        result = emulation.replay(0, info.interval_id, uid_base=base)
        base += len(result.events) + 1
        assert not result.halted, (info.proc_name, result.diagnostics)
        assert not [d for d in result.diagnostics if "divergence" in d]
        postlog = record.logs[0].entries[info.end_index]
        assert isinstance(postlog, Postlog)
        if postlog.has_retval:
            assert result.retval == postlog.retval


def test_obs_counters_attribute_the_fast_path():
    with obs.capture() as registry:
        run(compute_heavy(3, 4), fastpath=True, mode="plain", trace=False)
    names = set(registry.snapshot())
    assert "vm.fastpath.elided" in names
    assert "vm.fastpath.fused_ops" in names


def test_no_meta_counter_leak_when_fastpath_off():
    with obs.capture() as registry:
        run(compute_heavy(3, 4), fastpath=False, mode="plain", trace=False)
    leaked = [n for n in registry.snapshot() if n.startswith("vm.fastpath.")]
    assert leaked == []


# --- effect-summary refinement of the race-candidate set ----------------


def test_refinement_is_a_sound_noop_on_shipped_programs():
    compiled = compile_program(bank_race(2, 2))
    refined = candidates_from_compiled(compiled)
    unrefined = candidates_from_compiled(compiled, refine=False)
    assert refined.effect_pruned == 0
    assert {(p.site_a, p.site_b) for p in refined.pairs} == {
        (p.site_a, p.site_b) for p in unrefined.pairs
    }


def test_refinement_prunes_pairs_absent_from_bytecode_sites():
    """Synthetic effects missing one endpoint: every pair touching it is
    dropped, the rest survive, and the prune is tallied."""
    compiled = compile_program(bank_race(2, 2))
    candidates = candidates_from_compiled(compiled, refine=False)
    assert candidates.pairs
    effects = compiled.vm_code().effects()
    victim = candidates.pairs[0].site_a
    victim_key = (victim.proc, victim.node_id, victim.var, victim.write)
    pruned_sites = frozenset(effects.shared_sites - {victim_key})

    class FakeEffects:
        shared_sites = pruned_sites

    refined = refine_with_effects(candidates, FakeEffects())
    assert refined.effect_pruned > 0
    assert len(refined.pairs) == len(candidates.pairs) - refined.effect_pruned
    for pair in refined.pairs:
        for site in (pair.site_a, pair.site_b):
            assert (site.proc, site.node_id, site.var, site.write) != victim_key
    # Bookkeeping the scans rely on is preserved.
    assert refined.known_sites == candidates.known_sites
    assert refined.site_cap == candidates.site_cap
