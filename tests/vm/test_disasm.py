"""Golden disassembly: the bytecode lowering of a fixed program is part of
the VM's public contract (``ppd disasm`` output, DESIGN.md section 3.12).
An intentional lowering change must update this listing in the same
commit — anything else is an accidental codegen change."""

from __future__ import annotations

import pytest

from repro.compiler.compile import compile_program
from repro.core.cli import main as ppd_main
from repro.vm import disassemble, disassemble_program

SOURCE = """\
shared int total;
sem gate = 1;

func int twice(int n) {
    return n * 2;
}

proc main() {
    int k = 0;
    while (k < 2) {
        P(gate);
        total = total + twice(k);
        V(gate);
        k = k + 1;
    }
    print("total =", total);
}
"""

GOLDEN = """\
proc twice  (7 instrs)
     0  PRE            @s1
     1  BEGIN_READS
     2  LOAD           n 4
     3  CONST          2
     4  BINOP          *
     5  RETURN_VALUE   @s1
     6  PROC_RETURN    proc:twice

proc main  (43 instrs)
     0  PRE            @s2
     1  BEGIN_READS
     2  CONST          0
     3  DECL_INIT      @s2
     4  PRE            @s3
     5  LOOP_ENTER     @s3 - exit->37 continue->6
     6  BEGIN_READS
     7  LOAD           k 12
     8  CONST          2
     9  BINOP          <
    10  PRED           @s3
    11  JUMP_IF_FALSE  -> 36
    12  PRE            @s4
    13  SEM_P          @s4
    14  POST           @s4
    15  PRE            @s5
    16  BEGIN_READS
    17  LOAD           total 17
    18  CALL_BEGIN     @n19 proc:twice
    19  ARG_MARK
    20  LOAD           k 18
    21  ARG_CAPTURE
    22  CALL_USER      @n19 proc:twice
    23  BINOP          +
    24  STORE          total @s5
    25  POST           @s5
    26  PRE            @s6
    27  SEM_V          @s6
    28  POST           @s6
    29  PRE            @s7
    30  BEGIN_READS
    31  LOAD           k 24
    32  CONST          1
    33  BINOP          +
    34  STORE          k @s7
    35  JUMP           -> 6
    36  LOOP_EXIT
    37  PRE            @s8
    38  BEGIN_READS
    39  CONST          total =
    40  LOAD           total 31
    41  PRINT          @s8 2
    42  PROC_RETURN    proc:main"""


def test_golden_listing():
    assert disassemble_program(compile_program(SOURCE)) == GOLDEN


def test_single_proc_listing_is_a_section_of_the_full_one():
    compiled = compile_program(SOURCE)
    full = disassemble_program(compiled)
    assert disassemble_program(compiled, proc="twice") in full
    assert disassemble_program(compiled, proc="main") in full


def test_unknown_proc_raises():
    compiled = compile_program(SOURCE)
    with pytest.raises(KeyError):
        disassemble_program(compiled, proc="nope")


def test_disassemble_one_code_object():
    compiled = compile_program(SOURCE)
    listing = disassemble(compiled.vm_code().proc("twice"))
    assert listing.startswith("proc twice")
    assert "PROC_RETURN" in listing


def test_vm_code_cache_is_reused():
    compiled = compile_program(SOURCE)
    assert compiled.vm_code() is compiled.vm_code()


def test_vm_code_cache_not_pickled():
    import pickle

    compiled = compile_program(SOURCE)
    compiled.vm_code()
    clone = pickle.loads(pickle.dumps(compiled))
    assert "_vm_cache" not in clone.__dict__
    # ...and rebuilding on the clone produces the same listing.
    assert disassemble_program(clone) == GOLDEN


def test_ppd_disasm_cli(tmp_path, capsys):
    path = tmp_path / "prog.pcl"
    path.write_text(SOURCE)
    assert ppd_main(["disasm", str(path)]) == 0
    out = capsys.readouterr().out
    assert "proc main" in out and "LOOP_ENTER" in out

    assert ppd_main(["disasm", str(path), "--proc", "twice"]) == 0
    out = capsys.readouterr().out
    assert "proc twice" in out and "proc main" not in out

    assert ppd_main(["disasm", str(path), "--proc", "ghost"]) == 1


GOLDEN_FAST_MAIN = """\
proc main  (36 instrs)
     0  PRE_LOCAL_R    @s2
     1  CONST          0
     2  DECL_INIT      @s2
     3  PRE_LOCAL      @s3
     4  LOOP_ENTER     @s3 - exit->30 continue->5
     5  BEGIN_READS
     6  BINOP_LC       < k 12 2
     7  PRED_JF        @s3 -> 29
     8  PRE            @s4
     9  SEM_P          @s4
    10  POST           @s4
    11  PRE            @s5
    12  BEGIN_READS
    13  LOAD           total 17
    14  CALL_BEGIN     @n19 proc:twice
    15  ARG_MARK
    16  LOADL          k 18
    17  ARG_CAPTURE
    18  CALL_USER      @n19 proc:twice
    19  BINOP          +
    20  STORE          total @s5
    21  POST           @s5
    22  PRE            @s6
    23  SEM_V          @s6
    24  POST           @s6
    25  PRE_LOCAL_R    @s7
    26  BINOP_LC       + k 24 1
    27  STOREL         k @s7
    28  JUMP           -> 5
    29  LOOP_EXIT
    30  PRE            @s8
    31  BEGIN_READS
    32  CONST          total =
    33  LOAD           total 31
    34  PRINT          @s8 2
    35  PROC_RETURN    proc:main"""


def test_golden_fast_listing():
    """The fused fast-path lowering is golden too: an intentional fusion
    change must update this listing in the same commit."""
    compiled = compile_program(SOURCE)
    assert disassemble_program(compiled, proc="main", fast=True) == GOLDEN_FAST_MAIN


def test_effect_annotations_mark_statement_boundaries():
    compiled = compile_program(SOURCE)
    listing = disassemble_program(compiled, annotate=True)
    assert "; local elidable" in listing  # k = k + 1
    assert "; sync" in listing  # P(gate) / V(gate)
    assert "; shared" in listing  # total = total + twice(k)
    # Annotations ride on the same listing text, never reorder it.
    stripped = "\n".join(
        line.split(";")[0].rstrip() for line in listing.splitlines()
    )
    assert stripped == disassemble_program(compiled)


def test_disasm_json_structure():
    from repro.vm import disasm_json

    compiled = compile_program(SOURCE)
    doc = disasm_json(compiled, proc="main", fast=True)
    assert doc["fast"] is True
    (proc,) = doc["procs"]
    assert proc["name"] == "main" and proc["kind"] == "proc"
    assert proc["summary"] == "sync"
    assert proc["instr_count"] == len(proc["instrs"])
    ops = [ins["op"] for ins in proc["instrs"]]
    assert "PRE_LOCAL_R" in ops and "BINOP_LC" in ops
    boundary = proc["instrs"][0]
    assert boundary["effect"] == "local" and boundary["elidable"] is True
    jumps = [ins for ins in proc["instrs"] if ins["op"] in ("JUMP", "PRED_JF")]
    for ins in jumps:
        assert 0 <= ins["target"] < proc["instr_count"]
    assert ("main", "total", True) in {
        (site[0], site[2], site[3]) for site in doc["shared_sites"]
    }


def test_ppd_disasm_cli_flags(tmp_path, capsys):
    import json

    path = tmp_path / "prog.pcl"
    path.write_text(SOURCE)

    assert ppd_main(["disasm", str(path), "--fast"]) == 0
    out = capsys.readouterr().out
    assert "PRE_LOCAL_R" in out and "BINOP_LC" in out

    assert ppd_main(["disasm", str(path), "--effects"]) == 0
    out = capsys.readouterr().out
    assert "; local elidable" in out and "; sync" in out

    assert ppd_main(["disasm", str(path), "--json", "--fast"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["fast"] is True
    assert {proc["name"] for proc in doc["procs"]} == {"twice", "main"}


def test_ppd_analyze_cli(tmp_path, capsys):
    import json

    path = tmp_path / "prog.pcl"
    path.write_text(SOURCE)

    assert ppd_main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "effects: 2 procedure(s), 8 statement(s)" in out
    assert "4 local (3 elidable), 2 shared, 2 sync" in out
    assert "shared sites:" in out

    assert ppd_main(["analyze", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["counts"] == {"local": 4, "shared": 2, "sync": 2}
    main_proc = next(p for p in doc["procs"] if p["name"] == "main")
    assert main_proc["summary"] == "sync"
    elidable = [s["label"] for s in main_proc["stmts"] if s["elidable"]]
    assert elidable == ["s2", "s3", "s7"]
