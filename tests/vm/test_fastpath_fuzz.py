"""Randomised fast-path differentials: on generated programs (reusing the
tests/test_fuzz program builder) the verified fast path must be invisible
— records, events, counters byte-identical on vs off — the verifier must
accept every generated lowering, and the bytecode shared-site set must
stay a superset of the AST access-site walk."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, compile_program
from repro.analysis.racecands import collect_access_sites
from repro.vm.verify import verify_code, verify_program

from tests.test_fuzz import programs
from tests.vm.util import surface


def _run(compiled, *, fastpath, inputs, mode="logged", trace=True):
    return Machine(
        compiled,
        seed=0,
        mode=mode,
        trace=trace,
        inputs=list(inputs),
        engine="vm",
        fastpath=fastpath,
    ).run()


@given(programs(), st.lists(st.integers(-50, 50), min_size=0, max_size=30))
@settings(max_examples=30, deadline=None)
def test_fuzz_fastpath_differential(source, inputs):
    compiled = compile_program(source)
    on = _run(compiled, fastpath=True, inputs=inputs)
    off = _run(compiled, fastpath=False, inputs=inputs)
    assert surface(on) == surface(off)


@given(programs(), st.lists(st.integers(-50, 50), min_size=0, max_size=30))
@settings(max_examples=30, deadline=None)
def test_fuzz_fastpath_differential_plain(source, inputs):
    compiled = compile_program(source)
    on = _run(compiled, fastpath=True, inputs=inputs, mode="plain", trace=False)
    off = _run(compiled, fastpath=False, inputs=inputs, mode="plain", trace=False)
    assert surface(on) == surface(off)


@given(programs())
@settings(max_examples=30, deadline=None)
def test_fuzz_verifier_accepts_raw_and_fused(source):
    compiled = compile_program(source)
    verify_program(compiled)
    program_code = compiled.vm_code()
    for proc in compiled.program.procs:
        verify_code(program_code.proc(proc.name, fast=True))


@given(programs())
@settings(max_examples=30, deadline=None)
def test_fuzz_shared_sites_superset_of_ast_walk(source):
    compiled = compile_program(source)
    effects = compiled.vm_code().effects()
    ast_sites = {
        (site.proc, site.node_id, site.var, site.write)
        for site in collect_access_sites(compiled.program, compiled.table)
    }
    missing = ast_sites - set(effects.shared_sites)
    assert not missing, sorted(missing)
