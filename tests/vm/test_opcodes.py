"""Per-opcode units: for each language construct, (a) the compiler emits
the expected opcodes, and (b) the VM's dispatch of those opcodes is
observationally identical to the interpreter — including the error
paths, whose messages and attached failure sites must match byte for
byte."""

from __future__ import annotations

import pytest

from repro.compiler.compile import compile_program
from repro.vm import bytecode as bc
from repro.vm import disassemble_program

from tests.vm.util import assert_engines_agree

# (name, source, opcodes that must appear, inputs)
CASES = [
    (
        "scalar-arithmetic",
        """\
proc main() {
    int a = 6;
    int b = a * 7 - 2;
    b = b / 4;
    b = b % 3;
    print(0 - b, -b);
}
""",
        ["CONST", "DECL_INIT", "LOAD", "BINOP", "STORE", "UNOP", "PRINT"],
        None,
    ),
    (
        "bool-logic",
        """\
proc main() {
    bool t = 1 < 2 && 3 != 4;
    bool u = t || 1 > 2;
    bool v = !u;
    assert(u);
    print(t, u, v);
}
""",
        ["SC_AND", "SC_OR", "TO_BOOL", "UNOP", "ASSERT"],
        None,
    ),
    (
        "arrays",
        """\
proc main() {
    int m[4];
    for (i = 0; i < 4; i = i + 1) {
        m[i] = i * i;
    }
    int total = m[0] + m[1] + m[2] + m[3];
    print("total =", total, "len =", len(m));
}
""",
        ["DECL_ARRAY", "STORE_ELEM", "LOAD_ELEM", "CALL_PURE"],
        None,
    ),
    (
        "control-flow",
        """\
proc main() {
    int hits = 0;
    for (i = 0; i < 8; i = i + 1) {
        if (i == 5) {
            break;
        }
        if (i % 2 == 0) {
            continue;
        }
        hits = hits + 1;
    }
    int j = 0;
    while (1 == 1) {
        j = j + 1;
        if (j >= 3) {
            break;
        }
    }
    print(hits, j);
}
""",
        ["LOOP_ENTER", "LOOP_EXIT", "BREAK", "CONTINUE", "JUMP", "JUMP_IF_FALSE", "PRED"],
        None,
    ),
    (
        "functions",
        """\
func int helper(int n) {
    if (n <= 0) {
        return 0;
    }
    return n + helper(n - 1);
}

proc side() {
    return;
}

proc main() {
    print(helper(4));
    side();
}
""",
        [
            "CALL_BEGIN",
            "ARG_MARK",
            "ARG_CAPTURE",
            "CALL_USER",
            "RETURN_VALUE",
            "RETURN_NONE",
            "PROC_RETURN",
            "DISCARD",
        ],
        None,
    ),
    (
        "default-decl-and-input",
        """\
proc main() {
    int x;
    x = input();
    int y = input();
    int exhausted = input();
    print(x + y + exhausted, rand(3));
}
""",
        ["DECL_DEFAULT", "INPUT"],
        [7, 8],
    ),
    (
        "semaphores",
        """\
shared int n;
sem m = 1;
chan done;

proc bump() {
    P(m);
    n = n + 1;
    V(m);
    send(done, 1);
}

proc main() {
    spawn bump();
    int ack = recv(done);
    join();
    print(n);
}
""",
        ["SEM_P", "SEM_V", "SEND", "RECV", "SPAWN", "JOIN"],
        None,
    ),
    (
        "locks",
        """\
shared int n;
lockvar l;
proc work() {
    lock(l);
    n = n + 5;
    unlock(l);
}
proc main() {
    spawn work();
    join();
    print(n);
}
""",
        ["LOCK_ACQUIRE", "LOCK_RELEASE"],
        None,
    ),
    (
        "rendezvous",
        """\
entry ask;
proc server() {
    accept ask(int q) {
        reply q * 10;
    }
}
proc main() {
    spawn server();
    int answer = call ask(4);
    join();
    print(answer);
}
""",
        ["ACCEPT_ENTER", "ACCEPT_EXIT", "REPLY", "CALL_ENTRY"],
        None,
    ),
    (
        "builtins",
        """\
proc main() {
    float r = sqrt(2.0);
    print(floor(r * 100), abs(-4), min(2, 9), max(2, 9));
}
""",
        ["CALL_PURE"],
        None,
    ),
]

ERROR_CASES = [
    (
        "div-by-zero",
        """\
proc main() {
    int z = 0;
    print(7 / z);
}
""",
    ),
    (
        "mod-by-zero",
        """\
proc main() {
    int z = 0;
    print(7 % z);
}
""",
    ),
    (
        "assert-failure",
        """\
proc main() {
    int x = 3;
    assert(x > 5);
}
""",
    ),
    (
        "negative-sqrt",
        """\
proc main() {
    print(sqrt(0 - 9));
}
""",
    ),
    (
        "index-out-of-range",
        """\
proc main() {
    int m[2];
    m[5] = 1;
}
""",
    ),
    (
        "missing-return",
        """\
func int broken(int n) {
    int unused = n;
}
proc main() {
    print(broken(1));
}
""",
    ),
    (
        "recursion-overflow",
        """\
func int forever(int n) {
    return forever(n + 1);
}
proc main() {
    print(forever(0));
}
""",
    ),
]


def _opnames_in(listing: str) -> set[str]:
    return {
        line.split()[1]
        for line in listing.splitlines()
        if line and line.split()[0].isdigit()
    }


@pytest.mark.parametrize("name,source,opcodes,inputs", CASES, ids=[c[0] for c in CASES])
def test_compile_emits_expected_opcodes(name, source, opcodes, inputs):
    emitted = _opnames_in(disassemble_program(compile_program(source)))
    missing = set(opcodes) - emitted
    assert not missing, f"{name}: {sorted(missing)} missing from listing"


@pytest.mark.parametrize("name,source,opcodes,inputs", CASES, ids=[c[0] for c in CASES])
def test_dispatch_matches_interp(name, source, opcodes, inputs):
    interp, _vm = assert_engines_agree(source, inputs=inputs)
    assert interp.failure is None, (name, interp.failure)


@pytest.mark.parametrize("name,source", ERROR_CASES, ids=[c[0] for c in ERROR_CASES])
def test_error_paths_match_interp(name, source):
    interp, vm = assert_engines_agree(source)
    assert interp.failure is not None, name
    assert interp.failure.message == vm.failure.message


def test_every_opcode_is_covered_somewhere():
    """The CASES + ERROR_CASES tables, together, exercise the full ISA
    except the e-block chunk ops (covered by the workload parity sweep —
    chunking needs an EBlockPolicy), the replay-root op, and the fused
    fast-path ops (only repro.vm.fuse emits those; tests/vm/test_fuse.py
    covers them)."""
    seen: set[str] = set()
    for _, source, _, _ in CASES:
        seen |= _opnames_in(disassemble_program(compile_program(source)))
    uncovered = set(bc.OPNAMES) - seen
    fused = {
        "PRE_LOCAL",
        "PRE_LOCAL_R",
        "LOADL",
        "STOREL",
        "LOADL_CONST",
        "BINOP_STOREL",
        "BINOP_LL",
        "BINOP_LC",
        "BINOP_C",
        "BINOP_L",
        "PRED_JF",
        "LOAD_ELEML",
    }
    assert uncovered <= {"CHUNK_ENTER", "CHUNK_EXIT", "ROOT_RETURN", "POST"} | fused, uncovered


def test_chunk_ops_emitted_under_split_policy():
    from repro.compiler import EBlockPolicy

    source = """\
proc main() {
    int a = 1;
    int b = 2;
    int c = 3;
    int d = 4;
    int e = 5;
    int f = 6;
    print(a + b + c + d + e + f);
}
"""
    compiled = compile_program(
        source, policy=EBlockPolicy(split_proc_min_stmts=3, split_chunk_stmts=2)
    )
    listing = disassemble_program(compiled)
    assert "CHUNK_ENTER" in listing and "CHUNK_EXIT" in listing
