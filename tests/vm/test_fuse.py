"""Superinstruction fusion (repro.vm.fuse): the fused twin of every
shipped code is shorter, verifier-clean, preserves every statement
boundary, and — via the parity harness — observationally identical."""

from __future__ import annotations

import pytest

from repro.compiler.compile import compile_program
from repro.vm import bytecode as bc
from repro.vm.verify import _PRE_OPS, verify_code
from repro.workloads import (
    bank_race,
    buggy_average,
    compute_heavy,
    fib_recursive,
    matrix_sum,
    producer_consumer,
)

from tests.vm.util import surface
from repro import Machine

SOURCES = {
    "bank_race": bank_race(2, 2),
    "buggy_average": buggy_average(5),
    "compute_heavy": compute_heavy(3, 4),
    "fib_recursive": fib_recursive(6),
    "matrix_sum": matrix_sum(4),
    "producer_consumer": producer_consumer(3, 1),
}

FUSED_OPS = {
    bc.PRE_LOCAL,
    bc.PRE_LOCAL_R,
    bc.LOADL,
    bc.STOREL,
    bc.LOADL_CONST,
    bc.BINOP_STOREL,
    bc.BINOP_LL,
    bc.BINOP_LC,
    bc.BINOP_C,
    bc.BINOP_L,
    bc.PRED_JF,
    bc.LOAD_ELEML,
}


def codes(source):
    compiled = compile_program(source)
    program_code = compiled.vm_code()
    for proc in compiled.program.procs:
        yield program_code.proc(proc.name), program_code.proc(proc.name, fast=True)


@pytest.mark.parametrize("name", sorted(SOURCES), ids=sorted(SOURCES))
def test_fused_code_is_shorter_and_verifier_clean(name):
    raw_total = fused_total = 0
    for raw, fused in codes(SOURCES[name]):
        assert len(fused.instrs) <= len(raw.instrs), fused.name
        raw_total += len(raw.instrs)
        fused_total += len(fused.instrs)
        verify_code(fused)
    assert fused_total < raw_total


@pytest.mark.parametrize("name", sorted(SOURCES), ids=sorted(SOURCES))
def test_fusion_preserves_every_statement_boundary(name):
    """Each raw PRE survives as exactly one PRE/PRE_LOCAL/PRE_LOCAL_R
    carrying the same statement object, in the same order."""
    for raw, fused in codes(SOURCES[name]):
        raw_stmts = [id(ins[1]) for ins in raw.instrs if ins[0] == bc.PRE]
        fused_stmts = [id(ins[1]) for ins in fused.instrs if ins[0] in _PRE_OPS]
        assert raw_stmts == fused_stmts, fused.name


def test_matrix_sum_exercises_the_whole_fused_isa():
    opset = set()
    for _, fused in codes(matrix_sum(4)):
        opset |= {ins[0] for ins in fused.instrs}
    expected = {
        bc.PRE_LOCAL,
        bc.PRE_LOCAL_R,
        bc.LOADL,
        bc.STOREL,
        bc.BINOP_STOREL,
        bc.BINOP_LL,
        bc.BINOP_LC,
        bc.BINOP_C,
        bc.PRED_JF,
        bc.LOAD_ELEML,
    }
    assert expected <= opset, {bc.OPNAMES[op] for op in expected - opset}
    # LOADL_CONST + BINOP_L need a shape matrix_sum lacks; fib covers them.
    fib_ops = set()
    for _, fused in codes(fib_recursive(4)):
        fib_ops |= {ins[0] for ins in fused.instrs}
    assert bc.BINOP_LC in fib_ops


def test_fused_ops_only_replace_proven_local_sites():
    """Accesses to shared names never fuse: every LOADL/STOREL family
    operand is absent from the program's shared-variable table."""
    for name, source in SOURCES.items():
        compiled = compile_program(source)
        shared = set(compiled.table.shared)
        program_code = compiled.vm_code()
        for proc in compiled.program.procs:
            for ins in program_code.proc(proc.name, fast=True).instrs:
                op = ins[0]
                if op in (bc.LOADL, bc.STOREL, bc.LOADL_CONST):
                    assert ins[1] not in shared, (name, bc.OPNAMES[op])
                elif op in (bc.BINOP_LC, bc.BINOP_L):
                    assert ins[2] not in shared, (name, bc.OPNAMES[op])
                elif op == bc.BINOP_STOREL:
                    assert ins[2] not in shared, (name, bc.OPNAMES[op])
                elif op == bc.BINOP_LL:
                    assert ins[2] not in shared and ins[4] not in shared, name
                elif op == bc.LOAD_ELEML:
                    assert ins[1] not in shared and ins[3] not in shared, name


def test_jump_targets_remap_onto_instruction_heads():
    """No jump in any fused code lands inside a superinstruction: every
    target indexes a real instruction (verifier invariant 1 re-checked
    here against the remapped operands)."""
    from repro.vm.verify import _jump_operands

    for name, source in SOURCES.items():
        for _, fused in codes(source):
            n = len(fused.instrs)
            for ins in fused.instrs:
                for target in _jump_operands(ins):
                    assert 0 <= target < n, (name, fused.name)


@pytest.mark.parametrize("name", sorted(SOURCES), ids=sorted(SOURCES))
def test_fused_execution_matches_raw(name):
    """Record surfaces are byte-identical with fusion+elision on vs off
    (fastpath=False runs the raw code objects)."""
    source = SOURCES[name]
    inputs = [10, 20, 30, 40, 50] if name == "buggy_average" else None
    for mode, trace in (("plain", False), ("logged", True)):
        raw = Machine(
            compile_program(source), seed=0, mode=mode, trace=trace,
            inputs=list(inputs) if inputs else None, engine="vm", fastpath=False,
        ).run()
        fused = Machine(
            compile_program(source), seed=0, mode=mode, trace=trace,
            inputs=list(inputs) if inputs else None, engine="vm", fastpath=True,
        ).run()
        assert surface(raw) == surface(fused), (name, mode)
