"""The bytecode verifier (repro.vm.verify): every shipped lowering —
raw and fused — satisfies all four structural invariants, and each
invariant violation is rejected with its typed error."""

from __future__ import annotations

import pytest

from repro.compiler.compile import compile_program
from repro.vm import bytecode as bc
from repro.vm.verify import (
    JumpTargetError,
    StackDepthError,
    UnreachableBlockError,
    YieldSiteError,
    verify_code,
    verify_program,
)
from repro.workloads import (
    bank_race,
    buggy_average,
    compute_heavy,
    dining_philosophers,
    fig41_program,
    fig61_program,
    matrix_sum,
    producer_consumer,
    rpc_server,
)

SHIPPED = [
    bank_race(2, 2),
    buggy_average(5),
    compute_heavy(3, 4),
    dining_philosophers(3),
    fig41_program(),
    fig61_program(),
    matrix_sum(4),
    producer_consumer(3, 1),
    rpc_server(2, 1),
]


class _Stmt:
    """Minimal statement stand-in for hand-built code objects."""

    def __init__(self, node_id: int = 1, stmt_label: str = "s1") -> None:
        self.node_id = node_id
        self.stmt_label = stmt_label


def code(instrs, stmt_at=None, name="synthetic"):
    return bc.Code(name, "proc", list(instrs), stmt_at or [None] * len(instrs))


@pytest.mark.parametrize("source", SHIPPED, ids=lambda s: s.strip().splitlines()[0][:24])
def test_accepts_every_shipped_program_raw_and_fused(source):
    compiled = compile_program(source)
    verify_program(compiled)  # raw form
    program_code = compiled.vm_code()
    for proc in compiled.program.procs:
        verify_code(program_code.proc(proc.name, fast=True))  # fused form


def test_accepts_minimal_code():
    stmt = _Stmt()
    minimal = code([(bc.PRE, stmt), (bc.ROOT_RETURN,)], [stmt, None])
    assert verify_code(minimal) is minimal


# --- invariant 1: jump targets in bounds -------------------------------


def test_rejects_out_of_bounds_jump():
    with pytest.raises(JumpTargetError, match="out of bounds"):
        verify_code(code([(bc.JUMP, 5), (bc.ROOT_RETURN,)]))


def test_rejects_negative_jump():
    with pytest.raises(JumpTargetError, match="out of bounds"):
        verify_code(code([(bc.JUMP, -1), (bc.ROOT_RETURN,)]))


def test_rejects_fall_off_the_end():
    with pytest.raises(JumpTargetError, match="falls off the end"):
        verify_code(code([(bc.CONST, 1)]))


def test_rejects_empty_code():
    with pytest.raises(JumpTargetError, match="empty"):
        verify_code(code([]))


# --- invariant 2: stack-depth balance ----------------------------------


def test_rejects_stack_underflow():
    with pytest.raises(StackDepthError, match="pops"):
        verify_code(code([(bc.BINOP, "+"), (bc.ROOT_RETURN,)]))


def test_rejects_operand_leak_into_statement_boundary():
    stmt = _Stmt()
    leaky = code(
        [(bc.CONST, 1), (bc.PRE, stmt), (bc.ROOT_RETURN,)],
        [None, stmt, None],
    )
    with pytest.raises(StackDepthError, match="boundary at stack depth 1"):
        verify_code(leaky)


def test_rejects_predecessor_depth_disagreement():
    # Fallthrough reaches index 3 at depth 1, the branch at depth 0.
    bad = code(
        [
            (bc.CONST, 1),
            (bc.JUMP_IF_FALSE, 3),
            (bc.CONST, 2),
            (bc.ROOT_RETURN,),
        ]
    )
    with pytest.raises(StackDepthError, match="disagree"):
        verify_code(bad)


# --- invariant 3: e-block boundaries reachable -------------------------


def test_rejects_unreachable_block_boundary():
    with pytest.raises(UnreachableBlockError, match="unreachable"):
        verify_code(code([(bc.ROOT_RETURN,), (bc.LOOP_EXIT,)]))


# --- invariant 4: one yield site per preemption point ------------------


def test_rejects_duplicate_yield_site():
    stmt = _Stmt()
    doubled = code(
        [(bc.PRE, stmt), (bc.PRE, stmt), (bc.ROOT_RETURN,)],
        [stmt, stmt, None],
    )
    with pytest.raises(YieldSiteError, match="second"):
        verify_code(doubled)


def test_rejects_duplicate_yield_site_across_pre_kinds():
    # Fusion may rewrite PRE to PRE_LOCAL/PRE_LOCAL_R but can never
    # leave a statement with two boundaries of any kind.
    stmt = _Stmt()
    doubled = code(
        [(bc.PRE_LOCAL, stmt), (bc.PRE_LOCAL_R, stmt), (bc.ROOT_RETURN,)],
        [stmt, stmt, None],
    )
    with pytest.raises(YieldSiteError, match="second"):
        verify_code(doubled)


def test_rejects_stmt_at_disagreement():
    stmt, other = _Stmt(1, "s1"), _Stmt(2, "s2")
    skewed = code([(bc.PRE, stmt), (bc.ROOT_RETURN,)], [other, None])
    with pytest.raises(YieldSiteError, match="disagrees"):
        verify_code(skewed)


def test_rejects_stmt_at_length_mismatch():
    with pytest.raises(YieldSiteError, match="entries"):
        verify_code(bc.Code("synthetic", "proc", [(bc.ROOT_RETURN,)], []))


def test_errors_name_the_code_and_index():
    with pytest.raises(JumpTargetError) as excinfo:
        verify_code(code([(bc.JUMP, 9), (bc.ROOT_RETURN,)], name="culprit"))
    assert excinfo.value.code_name == "culprit"
    assert excinfo.value.index == 0
    assert "culprit@0" in str(excinfo.value)
