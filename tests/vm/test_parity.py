"""Whole-system differential parity: every shipped workload and example
program is byte-identical under ``engine="interp"`` and ``engine="vm"``,
and the VM can stand in for the interpreter during e-block replay."""

from __future__ import annotations

import glob
import os

import pytest

from repro import Machine, compile_program
from repro.core import EmulationPackage
from repro.runtime import build_interval_index
from repro import workloads

from tests.vm.util import assert_engines_agree

WORKLOADS = {
    "bank_race": (workloads.bank_race(2, 2), None),
    "bank_safe": (workloads.bank_safe(2, 2), None),
    "buggy_average": (workloads.buggy_average(5), [10, 20, 30, 40, 50]),
    "compute_heavy": (workloads.compute_heavy(3, 4), None),
    "dining_philosophers": (workloads.dining_philosophers(3), None),
    "dining_courteous": (workloads.dining_philosophers(3, courteous=True), None),
    "fib_recursive": (workloads.fib_recursive(6), None),
    "fig41": (workloads.fig41_program(), None),
    "fig53": (workloads.fig53_program(), None),
    "fig61": (workloads.fig61_program(), None),
    "matrix_sum": (workloads.matrix_sum(3), None),
    "nested_calls": (workloads.nested_calls(), None),
    "pipeline": (workloads.pipeline(2, 3), None),
    "producer_consumer": (workloads.producer_consumer(4, 1), None),
    "rpc_server": (workloads.rpc_server(), None),
}

EXAMPLES = sorted(
    glob.glob(os.path.join(os.path.dirname(__file__), "..", "..", "examples", "*.pcl"))
)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_parity_logged(name):
    source, inputs = WORKLOADS[name]
    assert_engines_agree(source, inputs=inputs)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_parity_plain_other_seed(name):
    source, inputs = WORKLOADS[name]
    assert_engines_agree(source, seed=3, mode="plain", trace=False, inputs=inputs)


@pytest.mark.parametrize("path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES])
def test_example_parity(path):
    with open(path) as handle:
        source = handle.read()
    interp, _ = assert_engines_agree(source)
    assert interp.failure is None and interp.deadlock is None, path


def test_examples_exist():
    """The vm-parity CI job globs examples/*.pcl — keep the set non-empty."""
    assert len(EXAMPLES) >= 6, EXAMPLES


def test_vm_replays_recorded_intervals():
    """A record produced by the interpreter replays identically when the
    emulation package re-executes its e-blocks on the VM."""
    source, inputs = WORKLOADS["producer_consumer"]
    record = Machine(compile_program(source), seed=0, mode="logged", inputs=inputs).run()
    by_engine = {}
    for engine in ("interp", "vm"):
        package = EmulationPackage(record, engine=engine)
        transcripts = []
        for pid, log in sorted(record.logs.items()):
            for info in build_interval_index(log).values():
                if info.is_open:
                    continue
                result = package.replay(pid, info.interval_id, uid_base=0)
                transcripts.append(
                    (
                        pid,
                        info.interval_id,
                        result.halted,
                        result.failure_message,
                        [event.to_json() for event in result.events],
                        sorted(result.final_shared.items()),
                        result.diagnostics,
                    )
                )
        by_engine[engine] = transcripts
    assert by_engine["interp"] == by_engine["vm"]


def test_engine_validation():
    compiled = compile_program(WORKLOADS["fig41"][0])
    with pytest.raises(ValueError):
        Machine(compiled, engine="jit")
    with pytest.raises(ValueError):
        EmulationPackage(Machine(compiled, seed=0, mode="logged").run(), engine="jit")
