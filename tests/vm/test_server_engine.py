"""Engine selection through the debug service: a session opened with
``engine="vm"`` must answer every debugger command exactly like an
interpreter-backed session, survive eviction + rehydration with its
engine intact, and the wire protocol must reject unknown engines."""

from __future__ import annotations

import pytest

from repro.server import SessionManager
from repro.server.protocol import ProtocolError, Request, validate_request
from repro.workloads import bank_race, buggy_average

AVG_INPUTS = [10, 20, 30, 40, 50]
COMMANDS = ["where", "races", "why average", "stats", "parallel", "output"]


def transcript(mgr, sid):
    return {cmd: mgr.execute(sid, cmd) for cmd in COMMANDS}


def test_vm_session_matches_interp_session(tmp_path):
    mgr = SessionManager(max_live=4, spool_dir=str(tmp_path))
    try:
        sid_interp, info_interp = mgr.open_program(
            buggy_average(5), seed=0, inputs=AVG_INPUTS, engine="interp"
        )
        sid_vm, info_vm = mgr.open_program(
            buggy_average(5), seed=0, inputs=AVG_INPUTS, engine="vm"
        )
        assert info_interp["status"] == info_vm["status"]
        assert transcript(mgr, sid_interp) == transcript(mgr, sid_vm)
    finally:
        mgr.close_all()


def test_vm_engine_survives_rehydration(tmp_path):
    mgr = SessionManager(max_live=1, spool_dir=str(tmp_path))
    try:
        sid, _ = mgr.open_program(bank_race(2, 2), seed=3, engine="vm")
        before = transcript(mgr, sid)
        mgr.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)  # evicts
        assert not mgr.is_live(sid)
        assert transcript(mgr, sid) == before
        entry = next(e for e in mgr.list_info() if e["session"] == sid)
        assert entry["engine"] == "vm"
    finally:
        mgr.close_all()


def test_default_engine_is_recorded(tmp_path):
    mgr = SessionManager(max_live=2, spool_dir=str(tmp_path))
    try:
        sid, _ = mgr.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)
        entry = next(e for e in mgr.list_info() if e["session"] == sid)
        assert entry["engine"] == "interp"
    finally:
        mgr.close_all()


def test_protocol_rejects_unknown_engine():
    bad = Request(op="open", payload={"program": "proc main() {}", "engine": "jit"})
    with pytest.raises(ProtocolError):
        validate_request(bad)
    for good_engine in ("interp", "vm", None):
        payload = {"program": "proc main() {}"}
        if good_engine is not None:
            payload["engine"] = good_engine
        validate_request(Request(op="open", payload=payload))
