"""Separate-compilation tests (§7's future-work item)."""

import pytest

from repro.compiler import Workspace
from repro.lang import SemanticError

LIB = """
shared int SV;
func int helper(int x) {
    return x + 1;
}
"""

MAIN = """
proc main() {
    int a = helper(5);
    print(a);
}
"""


def make_workspace():
    workspace = Workspace()
    workspace.add_unit("lib", LIB)
    workspace.add_unit("main", MAIN)
    return workspace


class TestLinking:
    def test_cross_unit_calls_resolve(self):
        workspace = make_workspace()
        compiled = workspace.link()
        assert compiled.call_graph.calls["main"] == {"helper"}

    def test_linked_program_runs(self):
        from repro import Machine

        workspace = make_workspace()
        record = Machine(workspace.link(), seed=0, mode="logged").run()
        assert record.output[0][1] == "6"

    def test_link_is_cached(self):
        workspace = make_workspace()
        assert workspace.link() is workspace.link()

    def test_cross_unit_name_collision_detected(self):
        workspace = make_workspace()
        workspace.add_unit("dup", "func int helper(int y) { return y; }")
        with pytest.raises(SemanticError):
            workspace.link()

    def test_duplicate_unit_name_rejected(self):
        workspace = make_workspace()
        with pytest.raises(ValueError):
            workspace.add_unit("lib", "proc extra() { }")

    def test_remove_unit(self):
        workspace = make_workspace()
        workspace.remove_unit("lib")
        with pytest.raises(SemanticError):
            workspace.link()  # helper is now undefined


class TestChangeImpact:
    def test_local_change_stays_local(self):
        workspace = make_workspace()
        impact = workspace.update_unit(
            "lib",
            """
shared int SV;
func int helper(int x) {
    return x + 2;
}
""",
        )
        assert impact.changed_procs == {"helper"}
        assert impact.is_local
        assert not impact.summary_changes
        assert not impact.invalidated_eblocks

    def test_new_global_reference_propagates_to_callers(self):
        """The paper's exact concern: a procedure starts referencing a
        global; every (transitive) caller's summary and logging sets must
        be updated, even though their text did not change."""
        workspace = make_workspace()
        impact = workspace.update_unit(
            "lib",
            """
shared int SV;
func int helper(int x) {
    SV = SV + x;
    return SV;
}
""",
        )
        assert impact.changed_procs == {"helper"}
        changed = {c.proc for c in impact.summary_changes}
        assert changed == {"helper", "main"}
        assert impact.affected_callers == {"main"}
        helper_change = next(c for c in impact.summary_changes if c.proc == "helper")
        assert helper_change.ref_added == {"SV"}
        assert helper_change.mod_added == {"SV"}
        # Both e-blocks now log SV: old logs can't replay on new code.
        assert impact.invalidated_eblocks == {"helper", "main"}

    def test_transitive_propagation_through_middle_unit(self):
        workspace = Workspace()
        workspace.add_unit("leaf", "shared int G;\nfunc int leaf(int x) { return x; }")
        workspace.add_unit("mid", "func int mid(int x) { return leaf(x); }")
        workspace.add_unit("main", "proc main() { print(mid(1)); }")
        workspace.link()
        impact = workspace.update_unit(
            "leaf", "shared int G;\nfunc int leaf(int x) { G = x; return G; }"
        )
        assert impact.affected_callers == {"mid", "main"}

    def test_failed_update_rolls_back(self):
        workspace = make_workspace()
        with pytest.raises(SemanticError):
            workspace.update_unit("lib", "func int helper(int x) { return ghost; }")
        # The workspace still links with the old source.
        compiled = workspace.link()
        assert "helper" in compiled.program.proc_names

    def test_signature_change_counts_as_changed_proc(self):
        workspace = make_workspace()
        workspace.update_unit("main", MAIN)  # no-op first
        impact = workspace.update_unit(
            "lib",
            """
shared int SV;
func int helper(int renamed) {
    return renamed + 1;
}
""",
        )
        assert "helper" in impact.changed_procs

    def test_removed_proc_invalidate(self):
        workspace = Workspace()
        workspace.add_unit("a", "proc side() { }\nproc main() { side(); }")
        workspace.link()
        impact_error = None
        try:
            workspace.update_unit("a", "proc main() { }")
        except SemanticError as error:  # pragma: no cover - depends on call
            impact_error = error
        assert impact_error is None
        impact = workspace.update_unit("a", "proc other() { }\nproc main() { }")
        assert "other" in impact.changed_procs
