"""Instrumentation-plan tests (§3.2.1, §5.5)."""

from repro import compile_program
from repro.compiler import EBlockPolicy
from repro.workloads import fig53_program, nested_calls


class TestSyncUnitPrelogs:
    def test_p_site_snapshots_sv(self):
        compiled = compile_program(fig53_program())
        program = compiled.program
        # Find the P(mutex) statement in foo3.
        from repro.lang import ast

        p_stmt = next(
            s
            for s in ast.walk_statements(program.proc("foo3").body)
            if isinstance(s, ast.SemP)
        )
        assert compiled.plan.post_stmt_prelogs.get(p_stmt.node_id) == frozenset({"SV"})

    def test_v_site_has_no_prelog(self):
        compiled = compile_program(fig53_program())
        from repro.lang import ast

        v_stmt = next(
            s
            for s in ast.walk_statements(compiled.program.proc("foo3").body)
            if isinstance(s, ast.SemV)
        )
        # The unit after V reads no shared variables: no prelog site.
        assert v_stmt.node_id not in compiled.plan.post_stmt_prelogs

    def test_no_sync_prelogs_for_sequential_program(self):
        compiled = compile_program(nested_calls())
        assert not compiled.plan.post_stmt_prelogs

    def test_entry_unit_prelog_for_merged_proc(self):
        source = """
shared int SV;
func int reader(int x) { return SV + x; }
proc main() { int a = reader(1); print(a); }
"""
        compiled = compile_program(source, policy=EBlockPolicy(merge_leaf_max_stmts=10))
        assert "reader" in compiled.eblocks.merged_procs
        assert compiled.plan.entry_unit_prelogs.get("reader") == frozenset({"SV"})

    def test_plan_accessors(self):
        compiled = compile_program(fig53_program())
        assert compiled.plan.proc_block("foo3") is not None
        assert compiled.plan.proc_block("nonexistent") is None
        assert not compiled.plan.is_merged("foo3")

    def test_logging_site_count_positive(self):
        compiled = compile_program(fig53_program())
        assert compiled.plan.logging_site_count() >= 2 * len(compiled.eblocks.blocks)


class TestCompiledProgramBundle:
    def test_all_artifacts_present(self):
        compiled = compile_program(fig53_program())
        assert compiled.static_graph.procs
        assert compiled.simplified
        assert compiled.database.stmt_by_label
        assert compiled.cfgs.keys() == set(compiled.program.proc_names)

    def test_compile_accepts_parsed_program(self):
        from repro.lang import parse

        program = parse(nested_calls())
        compiled = compile_program(program)
        assert compiled.program is program
