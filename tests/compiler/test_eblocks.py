"""E-block construction policy tests (§5.4)."""

from repro import compile_program
from repro.compiler import EBlockPolicy
from repro.workloads import compute_heavy, fig53_program, nested_calls


class TestDefaultPolicy:
    def test_every_proc_is_an_eblock(self):
        compiled = compile_program(nested_calls())
        for name in compiled.program.proc_names:
            assert compiled.eblocks.is_proc_eblock(name)
        assert not compiled.eblocks.merged_procs

    def test_no_loop_blocks_by_default(self):
        compiled = compile_program(compute_heavy())
        assert not compiled.eblocks.loop_blocks

    def test_proc_block_carries_summary_sets(self):
        compiled = compile_program(fig53_program())
        block = compiled.eblocks.proc_blocks["foo3"]
        assert block.shared_ref == frozenset({"SV"})
        assert block.shared_mod == frozenset({"SV"})
        assert block.params == ("p", "q")
        assert block.returns_value

    def test_block_ids_unique(self):
        compiled = compile_program(nested_calls())
        ids = list(compiled.eblocks.blocks)
        assert len(ids) == len(set(ids))


class TestLeafMerging:
    def test_small_leaf_merged(self):
        compiled = compile_program(
            nested_calls(), policy=EBlockPolicy(merge_leaf_max_stmts=10)
        )
        # SubK is a small leaf: merged.  SubJ calls SubK: kept.
        assert "SubK" in compiled.eblocks.merged_procs
        assert compiled.eblocks.is_proc_eblock("SubJ")
        assert compiled.eblocks.is_proc_eblock("main")

    def test_threshold_respected(self):
        compiled = compile_program(
            nested_calls(), policy=EBlockPolicy(merge_leaf_max_stmts=2)
        )
        # SubK has more than 2 statements: not merged.
        assert "SubK" not in compiled.eblocks.merged_procs

    def test_main_never_merged(self):
        source = "proc main() { int a = 1; }"
        compiled = compile_program(source, policy=EBlockPolicy(merge_leaf_max_stmts=99))
        assert compiled.eblocks.is_proc_eblock("main")

    def test_spawn_targets_never_merged(self):
        source = """
proc tiny() { }
proc main() { spawn tiny(); join(); }
"""
        compiled = compile_program(source, policy=EBlockPolicy(merge_leaf_max_stmts=99))
        assert compiled.eblocks.is_proc_eblock("tiny")

    def test_sync_procs_kept_by_default(self):
        compiled = compile_program(
            fig53_program(), policy=EBlockPolicy(merge_leaf_max_stmts=99)
        )
        # foo3 contains P/V: keep_sync_procs protects it from merging.
        assert compiled.eblocks.is_proc_eblock("foo3")

    def test_sync_procs_merged_when_allowed(self):
        compiled = compile_program(
            fig53_program(),
            policy=EBlockPolicy(merge_leaf_max_stmts=99, keep_sync_procs=False),
        )
        assert "foo3" in compiled.eblocks.merged_procs


class TestLoopBlocks:
    def test_large_loops_become_eblocks(self):
        compiled = compile_program(
            compute_heavy(), policy=EBlockPolicy(loop_block_min_stmts=3)
        )
        assert compiled.eblocks.loop_blocks

    def test_loop_block_sets(self):
        source = """
shared int SV;
proc main() {
    int s = 0;
    int t = 2;
    for (i = 0; i < 10; i = i + 1) {
        s = s + t + SV;
    }
    print(s);
}
"""
        compiled = compile_program(source, policy=EBlockPolicy(loop_block_min_stmts=1))
        (block,) = compiled.eblocks.loop_blocks.values()
        assert block.kind == "loop"
        assert "s" in block.prelog_locals and "t" in block.prelog_locals
        assert "s" in block.postlog_locals
        assert block.shared_ref == frozenset({"SV"})
        assert block.shared_mod == frozenset()

    def test_small_loops_skipped(self):
        source = "proc main() { int s = 0; while (s < 3) { s = s + 1; } }"
        compiled = compile_program(source, policy=EBlockPolicy(loop_block_min_stmts=50))
        assert not compiled.eblocks.loop_blocks

    def test_nested_loops_both_blocked(self):
        source = """
proc main() {
    int s = 0;
    for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) {
            s = s + i * j;
        }
    }
    print(s);
}
"""
        compiled = compile_program(source, policy=EBlockPolicy(loop_block_min_stmts=1))
        assert len(compiled.eblocks.loop_blocks) == 2
