"""Chunk e-blocks: splitting large subroutines (§5.4).

"Though the size of a subroutine has no direct relationship to the time
needed to execute it, we can act conservatively to construct several
e-blocks out of such a large subroutine."
"""

from repro import compile_program, Machine
from repro.compiler import EBlockPolicy
from repro.core import EmulationPackage, PPDSession
from repro.runtime import build_interval_index

BIG_PROC = """
shared int SV;
func int big(int n) {
    int a = n + 1;
    int b = a * 2;
    int c = b + a;
    int d = c * c;
    if (d > 10) {
        d = d - 10;
    }
    int e = d + 1;
    int f = e * 2;
    SV = f;
    if (f > 100) {
        return f;
    }
    int g = f + 3;
    int h = g - 1;
    return h;
}
proc main() {
    int r = big(4);
    print(r);
}
"""

POLICY = EBlockPolicy(split_proc_min_stmts=8, split_chunk_stmts=4)


def compiled_big():
    return compile_program(BIG_PROC, policy=POLICY)


class TestChunkConstruction:
    def test_large_proc_gets_chunks(self):
        compiled = compiled_big()
        assert len(compiled.eblocks.chunk_blocks) >= 2
        assert "big" in compiled.eblocks.chunk_plan

    def test_small_proc_not_split(self):
        compiled = compiled_big()
        assert all(
            block.proc_name != "main" for block in compiled.eblocks.chunk_blocks.values()
        )

    def test_return_statements_are_barriers(self):
        compiled = compiled_big()
        db = compiled.database
        for block, node_ids in compiled.eblocks.chunk_plan["big"]:
            if block is None:
                continue
            for node_id in node_ids:
                from repro.lang import ast

                stmt = db.stmt_by_id[node_id]
                returns = [
                    s for s in ast.walk_statements(stmt) if isinstance(s, ast.Return)
                ]
                assert not returns, "a chunk must never contain a return"

    def test_chunk_plan_covers_whole_body(self):
        compiled = compiled_big()
        planned = [
            node_id
            for _, node_ids in compiled.eblocks.chunk_plan["big"]
            for node_id in node_ids
        ]
        body = compiled.program.proc("big").body.body
        assert planned == [stmt.node_id for stmt in body]

    def test_chunk_logging_sets(self):
        compiled = compiled_big()
        first_chunk = min(
            compiled.eblocks.chunk_blocks.values(), key=lambda b: b.node_id
        )
        # The first chunk computes a..d from the parameter n.
        assert "n" in first_chunk.prelog_locals
        assert {"a", "b", "c", "d"} <= set(first_chunk.postlog_locals)
        assert first_chunk.shared_mod == frozenset()


class TestChunkExecutionAndReplay:
    def test_output_unchanged_by_splitting(self):
        unsplit = Machine(compile_program(BIG_PROC), seed=0, mode="logged").run()
        split = Machine(compiled_big(), seed=0, mode="logged").run()
        assert unsplit.output == split.output

    def test_early_return_skips_later_chunks(self):
        record = Machine(compiled_big(), seed=0, mode="logged").run()
        index = build_interval_index(record.logs[0])
        chunk_intervals = [i for i in index.values() if i.block_kind == "chunk"]
        # big(4) returns at f > 100: the trailing g/h chunk never opened.
        assert len(chunk_intervals) == 2

    def test_proc_replay_skips_chunks_via_postlogs(self):
        record = Machine(compiled_big(), seed=0, mode="logged").run()
        index = build_interval_index(record.logs[0])
        big_info = next(
            i for i in index.values() if i.proc_name == "big" and i.block_kind == "proc"
        )
        result = EmulationPackage(record).replay(0, big_info.interval_id)
        assert not result.halted, result.diagnostics
        assert result.retval == 432
        assert len(result.subgraph_intervals) == 2  # both executed chunks

    def test_chunk_replay_regenerates_interior(self):
        record = Machine(compiled_big(), seed=0, mode="logged").run()
        index = build_interval_index(record.logs[0])
        emulation = EmulationPackage(record)
        for info in index.values():
            if info.block_kind != "chunk":
                continue
            result = emulation.replay(0, info.interval_id, uid_base=info.interval_id * 1000)
            assert not result.halted, result.diagnostics
            assert not [d for d in result.diagnostics if "divergence" in d]
            assert result.event_count >= 3

    def test_session_expands_chunk_subgraphs(self):
        record = Machine(compiled_big(), seed=0, mode="logged").run()
        session = PPDSession(record)
        session.start()
        # Expand big(), then the chunk sub-graph nodes inside it.
        big_node = next(
            n for n in session.graph.nodes.values() if n.label == "big()"
        )
        session.expand_subgraph(big_node.uid)
        chunk_nodes = [
            n
            for n in session.graph.nodes.values()
            if n.kind == "subgraph" and n.label.startswith("chunk")
        ]
        assert len(chunk_nodes) == 2
        before = len(session.graph.nodes)
        session.expand_subgraph(chunk_nodes[0].uid)
        assert len(session.graph.nodes) > before

    def test_no_return_proc_fully_chunked(self):
        source = """
proc main() {
    int a = 1;
    int b = a + 1;
    int c = b + 1;
    int d = c + 1;
    int e = d + 1;
    int f = e + 1;
    print(f);
}
"""
        policy = EBlockPolicy(split_proc_min_stmts=5, split_chunk_stmts=3)
        compiled = compile_program(source, policy=policy)
        record = Machine(compiled, seed=0, mode="logged").run()
        assert record.output[0][1] == "6"
        index = build_interval_index(record.logs[0])
        assert sum(1 for i in index.values() if i.block_kind == "chunk") >= 2
