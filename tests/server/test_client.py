"""Client-library unit tests (address parsing, connection behaviour)."""

import pytest

from repro.server import DEFAULT_PORT, DebugClient, parse_addr


class TestParseAddr:
    def test_host_and_port(self):
        assert parse_addr("10.1.2.3:4455") == ("10.1.2.3", 4455)

    def test_bare_port(self):
        assert parse_addr(":9000") == ("127.0.0.1", 9000)
        assert parse_addr("9000") == ("127.0.0.1", 9000)

    def test_bare_host(self):
        assert parse_addr("debugger.example") == ("debugger.example", DEFAULT_PORT)

    def test_bad_port(self):
        with pytest.raises(ValueError):
            parse_addr("host:notaport")


class TestConnection:
    def test_connect_refused_raises_oserror(self):
        with pytest.raises(OSError):
            DebugClient.connect("127.0.0.1:1", timeout=0.5)

    def test_retries_eventually_give_up(self):
        import time

        started = time.monotonic()
        with pytest.raises(OSError):
            DebugClient.connect("127.0.0.1:1", timeout=0.5, retries=2, retry_delay=0.05)
        assert time.monotonic() - started >= 0.1  # two retry sleeps happened

    def test_context_manager_closes(self):
        client = DebugClient("127.0.0.1", 1)
        client.close()  # closing an unopened client is a no-op
        assert client._sock is None
