"""Wire-protocol tests: golden lines per verb, validation, framing."""

import json

import pytest

from repro.server import (
    ALL_OPS,
    LIFECYCLE_OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    VERBS,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
)

# ----------------------------------------------------------------------
# Golden request/response pairs — one per verb and lifecycle op.  These
# exact byte strings are the protocol's compatibility contract: a change
# that breaks one of them is a wire-format change and needs a version
# bump.
# ----------------------------------------------------------------------

GOLDEN = {
    "where": (
        Request(op="where", id=1, session="s1"),
        '{"id":1,"op":"where","session":"s1","v":1}',
        Response(id=1, output="the program completed normally"),
        '{"id":1,"ok":true,"output":"the program completed normally","v":1}',
    ),
    "output": (
        Request(op="output", id=2, session="s1"),
        '{"id":2,"op":"output","session":"s1","v":1}',
        Response(id=2, output="P0: average = 20"),
        '{"id":2,"ok":true,"output":"P0: average = 20","v":1}',
    ),
    "graph": (
        Request(op="graph", id=3, session="s1", args=["6"]),
        '{"args":["6"],"id":3,"op":"graph","session":"s1","v":1}',
        Response(id=3, output="#12 ..."),
        '{"id":3,"ok":true,"output":"#12 ...","v":1}',
    ),
    "view": (
        Request(op="view", id=4, session="s1", args=["12", "15"]),
        '{"args":["12","15"],"id":4,"op":"view","session":"s1","v":1}',
        Response(id=4, output="(view)"),
        '{"id":4,"ok":true,"output":"(view)","v":1}',
    ),
    "why": (
        Request(op="why", id=5, session="s1", args=["average"]),
        '{"args":["average"],"id":5,"op":"why","session":"s1","v":1}',
        Response(id=5, output="average <- total / n"),
        '{"id":5,"ok":true,"output":"average <- total / n","v":1}',
    ),
    "back": (
        Request(op="back", id=6, session="s1", args=["12", "4"]),
        '{"args":["12","4"],"id":6,"op":"back","session":"s1","v":1}',
        Response(id=6, output="(flowback)"),
        '{"id":6,"ok":true,"output":"(flowback)","v":1}',
    ),
    "forward": (
        Request(op="forward", id=7, session="s1", args=["12"]),
        '{"args":["12"],"id":7,"op":"forward","session":"s1","v":1}',
        Response(id=7, output="(forward)"),
        '{"id":7,"ok":true,"output":"(forward)","v":1}',
    ),
    "expand": (
        Request(op="expand", id=8, session="s1", args=["9"]),
        '{"args":["9"],"id":8,"op":"expand","session":"s1","v":1}',
        Response(id=8, output="replayed interval 2: 21 events regenerated"),
        '{"id":8,"ok":true,"output":"replayed interval 2: 21 events regenerated","v":1}',
    ),
    "expandable": (
        Request(op="expandable", id=9, session="s1"),
        '{"id":9,"op":"expandable","session":"s1","v":1}',
        Response(id=9, output="(nothing to expand)"),
        '{"id":9,"ok":true,"output":"(nothing to expand)","v":1}',
    ),
    "races": (
        Request(op="races", id=10, session="s1"),
        '{"id":10,"op":"races","session":"s1","v":1}',
        Response(id=10, output="this execution instance is race-free (Def 6.4)"),
        '{"id":10,"ok":true,"output":"this execution instance is race-free (Def 6.4)","v":1}',
    ),
    "lint": (
        Request(op="lint", id=25, session="s1", args=["json", "error"]),
        '{"args":["json","error"],"id":25,"op":"lint","session":"s1","v":1}',
        Response(id=25, output="no error findings"),
        '{"id":25,"ok":true,"output":"no error findings","v":1}',
    ),
    "localize": (
        Request(op="localize", id=27, session="s1", args=["3", "json"]),
        '{"args":["3","json"],"id":27,"op":"localize","session":"s1","v":1}',
        Response(id=27, output="all processes match their group consensus"),
        '{"id":27,"ok":true,"output":"all processes match their group consensus","v":1}',
    ),
    "candidates": (
        Request(op="candidates", id=26, session="s1", args=["total"]),
        '{"args":["total"],"id":26,"op":"candidates","session":"s1","v":1}',
        Response(id=26, output="'total': 2 candidate site pair(s)"),
        '{"id":26,"ok":true,"output":"\'total\': 2 candidate site pair(s)","v":1}',
    ),
    "deadlock": (
        Request(op="deadlock", id=11, session="s1"),
        '{"id":11,"op":"deadlock","session":"s1","v":1}',
        Response(id=11, output="no deadlock"),
        '{"id":11,"ok":true,"output":"no deadlock","v":1}',
    ),
    "parallel": (
        Request(op="parallel", id=12, session="s1"),
        '{"id":12,"op":"parallel","session":"s1","v":1}',
        Response(id=12, output="parallel dynamic graph"),
        '{"id":12,"ok":true,"output":"parallel dynamic graph","v":1}',
    ),
    "restore": (
        Request(op="restore", id=13, session="s1", args=["9999"]),
        '{"args":["9999"],"id":13,"op":"restore","session":"s1","v":1}',
        Response(id=13, output="shared memory at t=9999:"),
        '{"id":13,"ok":true,"output":"shared memory at t=9999:","v":1}',
    ),
    "history": (
        Request(op="history", id=14, session="s1", args=["SV"]),
        '{"args":["SV"],"id":14,"op":"history","session":"s1","v":1}',
        Response(id=14, output="accesses to 'SV'"),
        '{"id":14,"ok":true,"output":"accesses to \'SV\'","v":1}',
    ),
    "slice": (
        Request(op="slice", id=15, session="s1", args=["12"]),
        '{"args":["12"],"id":15,"op":"slice","session":"s1","v":1}',
        Response(id=15, output="dynamic slice: s9, s10"),
        '{"id":15,"ok":true,"output":"dynamic slice: s9, s10","v":1}',
    ),
    "stats": (
        Request(op="stats", id=16, session="s1", args=["obs"]),
        '{"args":["obs"],"id":16,"op":"stats","session":"s1","v":1}',
        Response(id=16, output="session: 1 replay(s), 7 events generated"),
        '{"id":16,"ok":true,"output":"session: 1 replay(s), 7 events generated","v":1}',
    ),
    "save": (
        Request(op="save", id=17, session="s1", args=["/tmp/run.ppd.json"]),
        '{"args":["/tmp/run.ppd.json"],"id":17,"op":"save","session":"s1","v":1}',
        Response(id=17, output="saved record to /tmp/run.ppd.json"),
        '{"id":17,"ok":true,"output":"saved record to /tmp/run.ppd.json","v":1}',
    ),
    "load": (
        Request(op="load", id=18, session="s1", args=["/tmp/run.ppd.json"]),
        '{"args":["/tmp/run.ppd.json"],"id":18,"op":"load","session":"s1","v":1}',
        Response(id=18, output="loaded record from /tmp/run.ppd.json (1 process(es), 17 steps)"),
        '{"id":18,"ok":true,"output":"loaded record from /tmp/run.ppd.json '
        '(1 process(es), 17 steps)","v":1}',
    ),
    "help": (
        Request(op="help", id=19, session="s1"),
        '{"id":19,"op":"help","session":"s1","v":1}',
        Response(id=19, output="``where`` ..."),
        '{"id":19,"ok":true,"output":"``where`` ...","v":1}',
    ),
    "open": (
        Request(op="open", id=20, payload={"program": "proc main() {}", "seed": 3}),
        '{"id":20,"op":"open","program":"proc main() {}","seed":3,"v":1}',
        Response(id=20, output="opened s1", data={"session": "s1", "info": {"steps": 17}}),
        '{"id":20,"info":{"steps":17},"ok":true,"output":"opened s1","session":"s1","v":1}',
    ),
    "close": (
        Request(op="close", id=21, session="s1"),
        '{"id":21,"op":"close","session":"s1","v":1}',
        Response(id=21, output="closed s1"),
        '{"id":21,"ok":true,"output":"closed s1","v":1}',
    ),
    "list": (
        Request(op="list", id=22),
        '{"id":22,"op":"list","v":1}',
        Response(id=22, data={"sessions": [{"session": "s1", "live": True}]}),
        '{"id":22,"ok":true,"sessions":[{"live":true,"session":"s1"}],"v":1}',
    ),
    "ping": (
        Request(op="ping", id=23),
        '{"id":23,"op":"ping","v":1}',
        Response(id=23, output="pong"),
        '{"id":23,"ok":true,"output":"pong","v":1}',
    ),
    "shutdown": (
        Request(op="shutdown", id=24),
        '{"id":24,"op":"shutdown","v":1}',
        Response(id=24, output="draining"),
        '{"id":24,"ok":true,"output":"draining","v":1}',
    ),
}


class TestGoldenPairs:
    def test_every_op_has_a_golden_pair(self):
        assert set(GOLDEN) == set(ALL_OPS)
        assert set(GOLDEN) >= set(VERBS)
        assert set(GOLDEN) >= set(LIFECYCLE_OPS)

    @pytest.mark.parametrize("op", sorted(GOLDEN))
    def test_request_encodes_to_golden_line(self, op):
        request, wire, _, _ = GOLDEN[op]
        assert encode_request(request) == wire + "\n"

    @pytest.mark.parametrize("op", sorted(GOLDEN))
    def test_request_decodes_from_golden_line(self, op):
        request, wire, _, _ = GOLDEN[op]
        assert decode_request(wire) == request

    @pytest.mark.parametrize("op", sorted(GOLDEN))
    def test_response_encodes_to_golden_line(self, op):
        _, _, response, wire = GOLDEN[op]
        assert encode_response(response) == wire + "\n"

    @pytest.mark.parametrize("op", sorted(GOLDEN))
    def test_response_decodes_from_golden_line(self, op):
        _, _, response, wire = GOLDEN[op]
        assert decode_response(wire) == response


class TestErrors:
    def test_error_response_round_trip(self):
        wire = encode_response(error_response(7, "unknown-session", "no session 's9'"))
        decoded = decode_response(wire)
        assert decoded.ok is False
        assert decoded.error == {"code": "unknown-session", "message": "no session 's9'"}

    def test_unknown_error_code_downgraded_to_internal(self):
        assert error_response(1, "nonsense", "x").error["code"] == "internal"

    def test_bad_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request("{not json")
        assert excinfo.value.code == "bad-json"

    def test_non_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request("[1,2,3]")
        assert excinfo.value.code == "bad-json"

    def test_version_mismatch(self):
        line = json.dumps({"v": PROTOCOL_VERSION + 1, "id": 1, "op": "ping"})
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code == "bad-version"

    def test_missing_version(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id":1,"op":"ping"}')
        assert excinfo.value.code == "bad-version"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id":1,"op":"frobnicate","v":1}')
        assert excinfo.value.code == "unknown-verb"

    def test_verb_requires_session(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id":1,"op":"why","v":1}')
        assert excinfo.value.code == "bad-request"

    def test_open_requires_exactly_one_source(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"id":1,"op":"open","v":1}')
        assert excinfo.value.code == "bad-request"
        both = json.dumps(
            {"v": 1, "id": 1, "op": "open", "program": "x", "record_path": "y"}
        )
        with pytest.raises(ProtocolError):
            decode_request(both)

    def test_args_must_be_strings(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request('{"args":[12],"id":1,"op":"why","session":"s1","v":1}')
        assert excinfo.value.code == "bad-request"

    def test_reserved_payload_key_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request(Request(op="open", id=1, payload={"op": "sneaky", "program": "x"}))


class TestShapes:
    def test_request_line_property(self):
        assert Request(op="why", args=["average"]).line == "why average"
        assert Request(op="races").line == "races"

    def test_payload_survives_round_trip(self):
        request = Request(
            op="open",
            id=9,
            payload={"program": "p", "seed": 4, "inputs": [1, 2, 3]},
        )
        assert decode_request(encode_request(request)) == request

    def test_unicode_output_round_trip(self):
        response = Response(id=1, output="naïve — ünïcode\nline2")
        assert decode_response(encode_response(response)) == response
