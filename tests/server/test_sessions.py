"""Session-store tests: LRU eviction, idle timeout, transparent rehydration."""

import pytest

from repro import obs
from repro.server import SessionManager, SessionNotFound
from repro.workloads import bank_race, buggy_average, nested_calls

AVG_INPUTS = [10, 20, 30, 40, 50]


def open_average(mgr, seed=0):
    return mgr.open_program(buggy_average(5), seed=seed, inputs=AVG_INPUTS)


@pytest.fixture()
def mgr(tmp_path):
    manager = SessionManager(max_live=2, spool_dir=str(tmp_path / "spool"))
    yield manager
    manager.close_all()


class TestLifecycle:
    def test_open_and_execute(self, mgr):
        sid, info = open_average(mgr)
        assert info["live"] is True
        assert info["status"].startswith("failed:")
        assert "average = 20" in mgr.execute(sid, "output")

    def test_session_ids_are_unique(self, mgr):
        sids = {open_average(mgr)[0] for _ in range(3)}
        assert len(sids) == 3

    def test_close_removes_session(self, mgr):
        sid, _ = open_average(mgr)
        mgr.close(sid)
        with pytest.raises(SessionNotFound):
            mgr.execute(sid, "where")
        with pytest.raises(SessionNotFound):
            mgr.close(sid)

    def test_list_info_is_lru_ordered(self, mgr):
        sid_a, _ = open_average(mgr)
        sid_b, _ = open_average(mgr)
        mgr.execute(sid_a, "where")  # A becomes most recent
        listed = [info["session"] for info in mgr.list_info()]
        assert listed == [sid_b, sid_a]


class TestEviction:
    def test_lru_cap_evicts_oldest(self, tmp_path):
        mgr = SessionManager(max_live=1, spool_dir=str(tmp_path))
        sid_a, _ = open_average(mgr)
        sid_b, _ = open_average(mgr)
        assert not mgr.is_live(sid_a)
        assert mgr.is_live(sid_b)
        mgr.close_all()

    def test_rehydration_is_transparent(self, tmp_path):
        mgr = SessionManager(max_live=1, spool_dir=str(tmp_path))
        sid_a, _ = mgr.open_program(bank_race(2, 2), seed=3)
        commands = ["where", "races", "why balance", "stats", "parallel", "output"]
        before = {cmd: mgr.execute(sid_a, cmd) for cmd in commands}
        open_average(mgr)  # evicts A
        assert not mgr.is_live(sid_a)
        after = {cmd: mgr.execute(sid_a, cmd) for cmd in commands}
        assert before == after
        mgr.close_all()

    def test_journal_replays_expansions(self, tmp_path):
        mgr = SessionManager(max_live=1, spool_dir=str(tmp_path))
        sid, _ = open_average(mgr)
        listing = mgr.execute(sid, "expandable")
        uid = int(listing.split(":")[0].lstrip("#"))
        mgr.execute(sid, f"expand {uid}")
        why_after_expand = mgr.execute(sid, "why s")
        stats = mgr.execute(sid, "stats")
        mgr.open_program(nested_calls(), seed=0)  # evicts
        assert not mgr.is_live(sid)
        assert mgr.execute(sid, "expandable") == "(nothing to expand)"
        assert mgr.execute(sid, "why s") == why_after_expand
        assert mgr.execute(sid, "stats") == stats
        mgr.close_all()

    def test_failed_commands_are_not_journaled(self, tmp_path):
        mgr = SessionManager(max_live=1, spool_dir=str(tmp_path))
        sid, _ = open_average(mgr)
        assert mgr.execute(sid, "expand 999999").startswith("error:")
        mgr.open_program(nested_calls(), seed=0)
        # Rehydration must not replay the failing expand.
        assert "average = 20" in mgr.execute(sid, "output")
        mgr.close_all()

    def test_idle_timeout_evicts(self, tmp_path):
        fake_now = [0.0]
        mgr = SessionManager(
            max_live=4,
            idle_timeout_s=10.0,
            spool_dir=str(tmp_path),
            time_fn=lambda: fake_now[0],
        )
        sid_a, _ = open_average(mgr)
        sid_b, _ = open_average(mgr)
        fake_now[0] = 5.0
        mgr.execute(sid_b, "where")  # B stays fresh
        fake_now[0] = 11.0
        assert mgr.sweep_idle() == 1
        assert not mgr.is_live(sid_a)
        assert mgr.is_live(sid_b)
        # ... and the evicted session still answers identically.
        assert "average = 20" in mgr.execute(sid_a, "output")
        mgr.close_all()

    def test_obs_counters_track_evictions(self, tmp_path):
        with obs.capture() as registry:
            mgr = SessionManager(max_live=1, spool_dir=str(tmp_path))
            sid_a, _ = open_average(mgr)
            open_average(mgr)
            mgr.execute(sid_a, "where")  # rehydrates A, evicts B
            mgr.close_all()
        assert registry.value("server.sessions.opened") == 2
        assert registry.value("server.evictions") >= 2
        assert registry.value("server.rehydrations") == 1
        assert registry.value("server.sessions.closed") == 2


class TestOpenSources:
    def test_open_record_json_and_path(self, tmp_path, mgr):
        from repro.runtime import record_to_json, run_program, save_record

        record = run_program(nested_calls(), seed=0)
        sid_json, _ = mgr.open_record_json(record_to_json(record))
        path = tmp_path / "run.ppd.json"
        save_record(record, str(path))
        sid_path, info = mgr.open_record_path(str(path))
        assert mgr.execute(sid_json, "output") == mgr.execute(sid_path, "output")
        assert info["origin"] == str(path)

    def test_corrupt_record_raises_persist_error(self, mgr):
        from repro.runtime import PersistError

        with pytest.raises(PersistError):
            mgr.open_record_json("{broken")
