"""Debug-service integration tests over real TCP sockets.

The acceptance bar: a scripted client holds concurrent sessions against
one daemon and every proxied command returns output byte-identical to
the same command on an in-process :class:`PPDCommandLine` over the same
record — through LRU eviction and rehydration.
"""

import threading
import time

import pytest

from repro import Machine, compile_program, obs
from repro.core import PPDCommandLine
from repro.server import DebugClient, DebugService, ServerError
from repro.workloads import bank_race, buggy_average, nested_calls

AVG_INPUTS = [10, 20, 30, 40, 50]


def make_service(**kwargs):
    kwargs.setdefault("request_timeout_s", 30.0)
    service = DebugService(port=0, **kwargs)
    service.start()
    return service


def make_client(service, **kwargs):
    return DebugClient.connect(f"{service.host}:{service.port}", **kwargs)


def local_cli(source, seed=0, inputs=None):
    compiled = compile_program(source)
    record = Machine(compiled, seed=seed, mode="logged", inputs=inputs).run()
    return PPDCommandLine(record)


@pytest.fixture()
def service(tmp_path):
    svc = make_service(spool_dir=str(tmp_path / "spool"))
    yield svc
    svc.shutdown()


class TestByteIdentical:
    """Same record, same commands, local vs proxied — identical text."""

    SCRIPT = [
        "where",
        "output",
        "why average",
        "races",
        "stats",
        "history SV",
        "restore 9999",
        "parallel",
    ]

    def test_scripted_transcript_matches_local(self, service):
        local = local_cli(buggy_average(5), seed=0, inputs=AVG_INPUTS)
        with make_client(service) as client:
            session = client.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)
            for command in self.SCRIPT:
                assert session.execute(command) == local.execute(command), command
            # uid-addressed verbs: discover the uid the same way both sides.
            listing = session.execute("expandable")
            assert listing == local.execute("expandable")
            uid = int(listing.split(":")[0].lstrip("#"))
            for command in (f"expand {uid}", "why s", f"slice {uid}", "stats"):
                assert session.execute(command) == local.execute(command), command
            session.close()

    def test_empty_line_is_empty_both_sides(self, service):
        with make_client(service) as client:
            session = client.open_program(nested_calls(), seed=0)
            assert session.execute("") == ""
            session.close()


class TestLintVerb:
    """The ``lint``/``candidates`` verbs round-trip the same diagnostics a
    local session produces — text and JSON."""

    def test_lint_matches_local(self, service):
        local = local_cli(bank_race(2, 2), seed=3)
        with make_client(service) as client:
            session = client.open_program(bank_race(2, 2), seed=3)
            for command in ("lint", "lint json", "lint error", "candidates",
                            "candidates balance"):
                assert session.execute(command) == local.execute(command), command
            session.close()

    def test_lint_json_is_parseable_over_the_wire(self, service):
        import json as _json

        with make_client(service) as client:
            session = client.open_program(bank_race(2, 2), seed=3)
            payload = _json.loads(session.execute("lint json"))
            assert any(entry["code"] == "race" for entry in payload)
            session.close()


class TestConcurrency:
    def test_four_clients_two_sessions(self, service):
        """≥4 threaded clients hammering 2 shared sessions: every reply
        must match the local transcript for that session's record."""
        with make_client(service) as setup:
            avg = setup.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)
            race = setup.open_program(bank_race(2, 2), seed=3)

        local_avg = local_cli(buggy_average(5), seed=0, inputs=AVG_INPUTS)
        local_race = local_cli(bank_race(2, 2), seed=3)
        expected = {
            avg.sid: {
                cmd: local_avg.execute(cmd)
                for cmd in ("where", "output", "why average", "races", "stats")
            },
            race.sid: {
                cmd: local_race.execute(cmd)
                for cmd in ("where", "output", "why balance", "races", "stats")
            },
        }

        mismatches = []
        errors = []

        def hammer(sid, rounds=6):
            try:
                with make_client(service) as client:
                    for _ in range(rounds):
                        for command, want in expected[sid].items():
                            got = client.execute(sid, command)
                            if got != want:
                                mismatches.append((sid, command, got))
            except Exception as error:  # noqa: BLE001 - collected for the assert
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(sid,))
            for sid in (avg.sid, race.sid)
            for _ in range(3)  # 6 clients total, 3 per session
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert not mismatches, mismatches[:3]

    def test_request_counters_add_up(self, tmp_path):
        with obs.capture() as registry:
            service = make_service(spool_dir=str(tmp_path))
            try:
                with make_client(service) as client:
                    session = client.open_program(nested_calls(), seed=0)
                    for _ in range(5):
                        session.execute("where")
                    session.close()
            finally:
                service.shutdown()
        assert registry.value("server.requests", verb="where") == 5
        assert registry.value("server.requests", verb="open") == 1
        assert registry.value("server.request_errors") == 0
        assert registry.value("server.bytes_in") > 0
        assert registry.value("server.bytes_out") > 0


class TestEvictionOverTheWire:
    def test_eviction_is_invisible_to_clients(self, tmp_path):
        service = make_service(max_sessions=1, spool_dir=str(tmp_path))
        try:
            with make_client(service) as client:
                first = client.open_program(bank_race(2, 2), seed=3)
                commands = ["why balance", "races", "stats", "where"]
                before = {cmd: first.execute(cmd) for cmd in commands}

                second = client.open_program(nested_calls(), seed=0)  # evicts first
                infos = {i["session"]: i for i in client.sessions()}
                assert infos[first.sid]["live"] is False
                assert infos[second.sid]["live"] is True

                after = {cmd: first.execute(cmd) for cmd in commands}
                assert before == after
        finally:
            service.shutdown()


class TestStructuredErrors:
    def test_unknown_session(self, service):
        with make_client(service) as client:
            with pytest.raises(ServerError) as excinfo:
                client.execute("s999", "where")
            assert excinfo.value.code == "unknown-session"
            assert "Traceback" not in excinfo.value.message

    def test_unknown_verb(self, service):
        with make_client(service) as client:
            with pytest.raises(ServerError) as excinfo:
                client.call("frobnicate", session="s1")
            assert excinfo.value.code == "unknown-verb"

    def test_corrupt_record_upload(self, service):
        with make_client(service) as client:
            with pytest.raises(ServerError) as excinfo:
                client.open_record(json_text="{definitely not a record")
            assert excinfo.value.code == "persist-error"
            assert "Traceback" not in excinfo.value.message

    def test_open_failed_on_bad_program(self, service):
        with make_client(service) as client:
            with pytest.raises(ServerError) as excinfo:
                client.open_program("proc main( { this is not PCL")
            assert excinfo.value.code in ("open-failed", "internal")
            assert "Traceback" not in excinfo.value.message

    def test_raw_garbage_gets_error_reply_not_disconnect(self, service):
        import socket

        with socket.create_connection((service.host, service.port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            reply = sock.makefile("rb").readline()
        assert b'"ok":false' in reply
        assert b"bad-json" in reply

    def test_per_request_timeout(self, tmp_path):
        service = make_service(request_timeout_s=0.05, spool_dir=str(tmp_path))
        try:
            original = service.sessions.execute
            service.sessions.execute = lambda sid, line: (time.sleep(0.5), original(sid, line))[1]
            with make_client(service) as client:
                session = client.open_program(nested_calls(), seed=0)
                with pytest.raises(ServerError) as excinfo:
                    session.execute("where")
                assert excinfo.value.code == "timeout"
        finally:
            service.sessions.execute = original
            time.sleep(0.6)  # let the abandoned worker release the session lock
            service.shutdown()


class TestBackpressureAndDrain:
    def test_connection_backpressure(self, tmp_path):
        service = make_service(max_connections=1, spool_dir=str(tmp_path))
        try:
            with make_client(service) as first:
                first.ping()  # ensure the first connection is registered
                refused = make_client(service)
                with pytest.raises((ServerError, ConnectionError)) as excinfo:
                    refused.ping()
                if excinfo.type is ServerError:
                    assert excinfo.value.code == "server-busy"
                refused.close()
                first.ping()  # the accepted connection still works
        finally:
            service.shutdown()

    def test_client_initiated_shutdown_drains(self, tmp_path):
        service = make_service(spool_dir=str(tmp_path))
        with make_client(service) as client:
            assert client.shutdown_server() == "draining"
        service.shutdown()
        assert service._stopped.is_set()
        with pytest.raises(OSError):
            DebugClient.connect(f"{service.host}:{service.port}", timeout=2)

    def test_sessions_closed_after_shutdown(self, tmp_path):
        service = make_service(spool_dir=str(tmp_path))
        with make_client(service) as client:
            client.open_program(nested_calls(), seed=0)
        service.shutdown()
        assert service.sessions.list_info() == []


class TestSaveLoadOverTheWire:
    def test_remote_save_then_open_record_path(self, service, tmp_path):
        path = tmp_path / "snapshot.ppd.json"
        with make_client(service) as client:
            session = client.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)
            why = session.execute("why average")
            assert session.execute(f"save {path}") == f"saved record to {path}"
            restored = client.open_record(str(path), upload=False)
            assert restored.execute("why average") == why
            uploaded = client.open_record(str(path))  # client-side read + upload
            assert uploaded.execute("why average") == why
