"""Parser tests: every construct, precedence, errors, statement labels."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast


def parse_main(body: str) -> ast.ProcDef:
    return parse("proc main() {\n" + body + "\n}").proc("main")


def first_stmt(body: str) -> ast.Stmt:
    return parse_main(body).body.body[0]


class TestDeclarations:
    def test_shared_scalar(self):
        program = parse("shared int SV;\nproc main() { }")
        decl = program.shared[0]
        assert decl.name == "SV"
        assert decl.size is None and decl.init is None

    def test_shared_with_init(self):
        program = parse("shared int SV = 7;\nproc main() { }")
        assert isinstance(program.shared[0].init, ast.IntLit)

    def test_shared_array(self):
        program = parse("shared float m[10];\nproc main() { }")
        assert program.shared[0].size == 10
        assert program.shared[0].var_type == "float"

    def test_semaphore_default_initial(self):
        program = parse("sem s;\nproc main() { }")
        assert program.semaphores[0].initial == 1

    def test_semaphore_explicit_initial(self):
        program = parse("sem s = 0;\nproc main() { }")
        assert program.semaphores[0].initial == 0

    def test_channel_kinds(self):
        program = parse("chan a;\nchan b[0];\nchan c[5];\nproc main() { }")
        assert program.channels[0].capacity is None
        assert program.channels[1].capacity == 0
        assert program.channels[2].capacity == 5

    def test_lock_declaration(self):
        program = parse("lockvar l;\nproc main() { }")
        assert program.locks[0].name == "l"

    def test_func_definition(self):
        program = parse("func int f(int a, float b) { return a; }\nproc main() { }")
        proc = program.proc("f")
        assert proc.is_func and proc.return_type == "int"
        assert [p.name for p in proc.params] == ["a", "b"]
        assert [p.var_type for p in proc.params] == ["int", "float"]

    def test_proc_has_no_return_type(self):
        program = parse("proc p() { }\nproc main() { }")
        assert not program.proc("p").is_func

    def test_unknown_top_level_raises(self):
        with pytest.raises(ParseError):
            parse("banana int x;")


class TestStatements:
    def test_var_decl_with_init(self):
        stmt = first_stmt("int x = 1 + 2;")
        assert isinstance(stmt, ast.VarDecl)
        assert isinstance(stmt.init, ast.Binary)

    def test_local_array_decl(self):
        stmt = first_stmt("int a[4];")
        assert stmt.size == 4

    def test_assign_scalar(self):
        stmt = first_stmt("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Name)

    def test_assign_array_element(self):
        stmt = first_stmt("a[i + 1] = 0;")
        assert isinstance(stmt.target, ast.Index)
        assert isinstance(stmt.target.index, ast.Binary)

    def test_if_else(self):
        stmt = first_stmt("if (x > 0) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_if_without_else(self):
        stmt = first_stmt("if (x > 0) { y = 1; }")
        assert stmt.orelse is None

    def test_dangling_else_binds_to_nearest_if(self):
        stmt = first_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.orelse is None
        inner = stmt.then
        assert isinstance(inner, ast.If)
        assert inner.orelse is not None

    def test_while(self):
        stmt = first_stmt("while (x < 10) { x = x + 1; }")
        assert isinstance(stmt, ast.While)

    def test_for(self):
        stmt = first_stmt("for (i = 0; i < 5; i = i + 1) { s = s + i; }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)
        assert isinstance(stmt.step, ast.Assign)

    def test_break_continue(self):
        proc = parse_main("while (true) { break; continue; }")
        loop = proc.body.body[0]
        assert isinstance(loop.body.body[0], ast.Break)
        assert isinstance(loop.body.body[1], ast.Continue)

    def test_return_value(self):
        stmt = first_stmt("return x + 1;")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is not None

    def test_return_void(self):
        stmt = first_stmt("return;")
        assert stmt.value is None

    def test_semaphore_ops(self):
        proc = parse_main("P(mutex); V(mutex);")
        assert isinstance(proc.body.body[0], ast.SemP)
        assert isinstance(proc.body.body[1], ast.SemV)
        assert proc.body.body[0].sem == "mutex"

    def test_lock_ops(self):
        proc = parse_main("lock(l); unlock(l);")
        assert isinstance(proc.body.body[0], ast.LockStmt)
        assert isinstance(proc.body.body[1], ast.UnlockStmt)

    def test_send(self):
        stmt = first_stmt("send(ch, x * 2);")
        assert isinstance(stmt, ast.Send)
        assert stmt.channel == "ch"

    def test_recv_expression(self):
        stmt = first_stmt("x = recv(ch);")
        assert isinstance(stmt.value, ast.RecvExpr)
        assert stmt.value.channel == "ch"

    def test_spawn(self):
        stmt = first_stmt("spawn worker(1, x + 2);")
        assert isinstance(stmt, ast.Spawn)
        assert stmt.name == "worker"
        assert len(stmt.args) == 2

    def test_join(self):
        stmt = first_stmt("join();")
        assert isinstance(stmt, ast.Join)

    def test_print(self):
        stmt = first_stmt('print("x =", x);')
        assert isinstance(stmt, ast.Print)
        assert len(stmt.args) == 2

    def test_assert(self):
        stmt = first_stmt("assert(x == 1);")
        assert isinstance(stmt, ast.AssertStmt)

    def test_call_statement(self):
        stmt = first_stmt("helper(1, 2);")
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.call.name == "helper"

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_main("x = 1")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse("proc main() { x = 1;")


class TestExpressions:
    def expr_of(self, text):
        return first_stmt(f"x = {text};").value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = self.expr_of("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_precedence_and_over_or(self):
        expr = self.expr_of("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_left_associativity(self):
        expr = self.expr_of("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 2

    def test_parentheses_override(self):
        expr = self.expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = self.expr_of("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Unary)

    def test_unary_not(self):
        expr = self.expr_of("!done")
        assert expr.op == "!"

    def test_nested_unary(self):
        expr = self.expr_of("--x")
        assert isinstance(expr.operand, ast.Unary)

    def test_call_with_expression_args(self):
        expr = self.expr_of("SubD(a, b, a + b + c)")
        assert isinstance(expr, ast.CallExpr)
        assert isinstance(expr.args[2], ast.Binary)

    def test_index_expression(self):
        expr = self.expr_of("m[i * 2]")
        assert isinstance(expr, ast.Index)

    def test_bool_literals(self):
        assert self.expr_of("true").value is True
        assert self.expr_of("false").value is False

    def test_float_literal(self):
        assert self.expr_of("2.5").value == 2.5

    def test_incomplete_expression_raises(self):
        with pytest.raises(ParseError):
            parse_main("x = 1 + ;")


class TestStatementLabels:
    def test_labels_assigned_in_source_order(self):
        program = parse(
            """
proc main() {
    int a = 1;
    int b = 2;
    if (a > b) { a = b; }
}
"""
        )
        stmts = list(ast.walk_statements(program.proc("main").body))
        labelled = [s.stmt_label for s in stmts if not isinstance(s, ast.Block)]
        assert labelled == ["s1", "s2", "s3", "s4"]

    def test_node_ids_unique(self):
        program = parse("proc main() { int a = 1; a = a + 1; print(a); }")
        ids = [n.node_id for n in ast.walk(program)]
        assert len(ids) == len(set(ids))

    def test_expr_reads(self):
        program = parse("proc main() { x = a + b * m[i]; }")
        stmt = program.proc("main").body.body[0]
        assert ast.expr_reads(stmt.value) == {"a", "b", "m", "i"}
