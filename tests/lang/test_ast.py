"""AST helper tests: traversal, numbering, read-set extraction."""

import pytest

from repro.lang import ast, parse


SOURCE = """
shared int SV;
func int f(int x) {
    int y = x + SV;
    return y;
}
proc main() {
    int a = f(1);
    if (a > 0) { a = a - 1; }
    print(a);
}
"""


class TestTraversal:
    def test_walk_yields_every_node_once(self):
        program = parse(SOURCE)
        nodes = list(ast.walk(program))
        assert len({id(n) for n in nodes}) == len(nodes)
        assert program in nodes

    def test_iter_child_nodes_direct_only(self):
        program = parse(SOURCE)
        children = list(ast.iter_child_nodes(program))
        assert all(
            isinstance(c, (ast.SharedDecl, ast.ProcDef)) for c in children
        )

    def test_walk_statements_excludes_expressions(self):
        program = parse(SOURCE)
        stmts = list(ast.walk_statements(program.proc("main").body))
        assert all(isinstance(s, ast.Stmt) for s in stmts)
        kinds = {type(s).__name__ for s in stmts}
        assert "If" in kinds and "Print" in kinds

    def test_program_proc_lookup(self):
        program = parse(SOURCE)
        assert program.proc("f").is_func
        with pytest.raises(KeyError):
            program.proc("missing")


class TestNumbering:
    def test_labels_skip_blocks(self):
        program = parse(SOURCE)
        for proc in program.procs:
            for stmt in ast.walk_statements(proc.body):
                if isinstance(stmt, ast.Block):
                    assert stmt.stmt_label == ""
                else:
                    assert stmt.stmt_label.startswith("s")

    def test_numbering_is_dense_and_ordered(self):
        program = parse(SOURCE)
        labels = [
            int(s.stmt_label[1:])
            for proc in program.procs
            for s in ast.walk_statements(proc.body)
            if s.stmt_label
        ]
        assert labels == list(range(1, len(labels) + 1))

    def test_renumbering_is_stable(self):
        program = parse(SOURCE)
        before = {
            s.node_id: s.stmt_label
            for proc in program.procs
            for s in ast.walk_statements(proc.body)
        }
        ast.number_statements(program)
        after = {
            s.node_id: s.stmt_label
            for proc in program.procs
            for s in ast.walk_statements(proc.body)
        }
        assert before == after


class TestReadSets:
    def test_expr_reads_includes_index_bases(self):
        program = parse("proc main() { int m[2]; int i = 0; int x = m[i] + 1; }")
        stmt = program.proc("main").body.body[2]
        assert ast.expr_reads(stmt.init) == {"m", "i"}

    def test_expr_reads_through_calls(self):
        program = parse(SOURCE)
        assign = program.proc("main").body.body[0]
        # f(1) has no variable reads; only literals.
        assert ast.expr_reads(assign.init) == set()

    def test_lvalue_name(self):
        program = parse("proc main() { int a[2]; a[1] = 0; }")
        assign = program.proc("main").body.body[1]
        assert ast.lvalue_name(assign.target) == "a"
        with pytest.raises(TypeError):
            ast.lvalue_name(assign.value)  # an IntLit is not an lvalue
