"""Scanner tests: tokens, trivia, literals, and error positions."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INT
        assert token.text == "42"

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.type is TokenType.FLOAT
        assert token.text == "3.25"

    def test_integer_followed_by_dot_is_not_float(self):
        # "1." without a digit after the dot is INT then an error-causing dot,
        # so we only allow digit.dot.digit floats.
        tokens = tokenize("1 .5" if False else "1")
        assert tokens[0].type is TokenType.INT

    def test_identifier(self):
        token = tokenize("balance_2")[0]
        assert token.type is TokenType.NAME
        assert token.text == "balance_2"

    def test_keywords_recognised(self):
        assert types("if else while for proc func shared sem chan")[:-1] == [
            TokenType.KW_IF,
            TokenType.KW_ELSE,
            TokenType.KW_WHILE,
            TokenType.KW_FOR,
            TokenType.KW_PROC,
            TokenType.KW_FUNC,
            TokenType.KW_SHARED,
            TokenType.KW_SEM,
            TokenType.KW_CHAN,
        ]

    def test_p_and_v_are_keywords(self):
        assert types("P V")[:-1] == [TokenType.KW_P, TokenType.KW_V]

    def test_name_containing_keyword_prefix(self):
        token = tokenize("iffy")[0]
        assert token.type is TokenType.NAME


class TestOperators:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("==", TokenType.EQ),
            ("!=", TokenType.NE),
            ("<=", TokenType.LE),
            (">=", TokenType.GE),
            ("&&", TokenType.AND),
            ("||", TokenType.OR),
            ("<", TokenType.LT),
            (">", TokenType.GT),
            ("=", TokenType.ASSIGN),
            ("!", TokenType.NOT),
            ("%", TokenType.PERCENT),
        ],
    )
    def test_operator(self, source, expected):
        assert tokenize(source)[0].type is expected

    def test_two_char_ops_take_precedence(self):
        assert types("a<=b")[:-1] == [TokenType.NAME, TokenType.LE, TokenType.NAME]

    def test_adjacent_assign_tokens(self):
        # "= =" is two ASSIGN tokens, "==" is one EQ.
        assert types("= =")[:-1] == [TokenType.ASSIGN, TokenType.ASSIGN]
        assert types("==")[:-1] == [TokenType.EQ]


class TestTriviaAndComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_block_comment_with_stars(self):
        assert texts("a /* ** * */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert texts("a\tb\r\nc") == ["a", "b", "c"]


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"hello"')[0]
        assert token.type is TokenType.STRING
        assert token.text == "hello"

    def test_escapes(self):
        token = tokenize(r'"a\nb\tc\"d\\e"')[0]
        assert token.text == 'a\nb\tc"d\\e'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_position(self):
        with pytest.raises(LexError) as info:
            tokenize("a\n  @")
        assert info.value.line == 2
        assert info.value.column == 3

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")
