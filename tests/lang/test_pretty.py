"""Pretty-printer tests, including a hypothesis round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast, expr_to_str, parse, program_to_str, statement_source
from repro.workloads import (
    bank_race,
    buggy_average,
    compute_heavy,
    dining_philosophers,
    fig41_program,
    fig53_program,
    fig61_program,
    matrix_sum,
    nested_calls,
    pipeline,
    producer_consumer,
)

ALL_WORKLOADS = [
    fig41_program(),
    fig53_program(),
    fig61_program(),
    nested_calls(),
    bank_race(),
    producer_consumer(),
    pipeline(),
    dining_philosophers(),
    compute_heavy(),
    matrix_sum(),
    buggy_average(),
]


class TestRoundTrip:
    def test_workloads_round_trip(self):
        """parse -> print -> parse -> print is a fixpoint on every workload."""
        for source in ALL_WORKLOADS:
            printed = program_to_str(parse(source))
            reprinted = program_to_str(parse(printed))
            assert printed == reprinted

    def test_round_trip_preserves_structure(self):
        source = fig53_program()
        original = parse(source)
        reparsed = parse(program_to_str(original))
        assert original.proc_names == reparsed.proc_names
        assert len(list(ast.walk_statements(original.proc("foo3").body))) == len(
            list(ast.walk_statements(reparsed.proc("foo3").body))
        )


# -- hypothesis: generated expressions survive print -> parse -> print -------

names = st.sampled_from(["a", "b", "c", "x", "y"])


def exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=99).map(
            lambda v: ast.IntLit(node_id=0, line=1, column=1, value=v)
        ),
        st.booleans().map(lambda v: ast.BoolLit(node_id=0, line=1, column=1, value=v)),
        names.map(lambda n: ast.Name(node_id=0, line=1, column=1, name=n)),
    )

    def extend(children):
        binary = st.builds(
            lambda op, l, r: ast.Binary(node_id=0, line=1, column=1, op=op, left=l, right=r),
            st.sampled_from(["+", "-", "*", "==", "<", "&&", "||"]),
            children,
            children,
        )
        unary = st.builds(
            lambda op, e: ast.Unary(node_id=0, line=1, column=1, op=op, operand=e),
            st.sampled_from(["-", "!"]),
            children,
        )
        return st.one_of(binary, unary)

    return st.recursive(leaves, extend, max_leaves=12)


@given(exprs())
@settings(max_examples=200, deadline=None)
def test_expression_print_parse_roundtrip(expr):
    """expr_to_str output reparses to an expression that prints identically."""
    text = expr_to_str(expr)
    program = parse("proc main() { x = " + text + "; }")
    reparsed = program.proc("main").body.body[0].value
    assert expr_to_str(reparsed) == text


class TestStatementSource:
    def test_if_summary(self):
        program = parse("proc main() { if (x > 0) { y = 1; } }")
        stmt = program.proc("main").body.body[0]
        assert statement_source(stmt) == "if ((x > 0))"

    def test_assign_summary(self):
        program = parse("proc main() { y = 1; }")
        stmt = program.proc("main").body.body[0]
        assert statement_source(stmt) == "y = 1;"

    def test_while_summary(self):
        program = parse("proc main() { while (x < 3) { x = x + 1; } }")
        stmt = program.proc("main").body.body[0]
        assert "while" in statement_source(stmt)
