"""Runtime value and operator semantics (C-flavoured where it matters)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import PCLArray, PCLRuntimeError, apply_binary, apply_unary
from repro.runtime.values import call_pure_builtin, default_value, format_value


class TestArithmetic:
    def test_int_division_truncates_toward_zero(self):
        assert apply_binary("/", 7, 2) == 3
        assert apply_binary("/", -7, 2) == -3
        assert apply_binary("/", 7, -2) == -3
        assert apply_binary("/", -7, -2) == 3

    def test_float_division(self):
        assert apply_binary("/", 7.0, 2) == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(PCLRuntimeError):
            apply_binary("/", 1, 0)
        with pytest.raises(PCLRuntimeError):
            apply_binary("%", 1, 0)

    def test_c_modulo_sign(self):
        assert apply_binary("%", 7, 2) == 1
        assert apply_binary("%", -7, 2) == -1
        assert apply_binary("%", 7, -2) == 1

    @given(
        st.integers(min_value=-1000, max_value=1000),
        st.integers(min_value=-1000, max_value=1000).filter(lambda v: v != 0),
    )
    @settings(max_examples=300, deadline=None)
    def test_div_mod_law(self, a, b):
        """C guarantees (a/b)*b + a%b == a with truncating division."""
        q = apply_binary("/", a, b)
        r = apply_binary("%", a, b)
        assert q * b + r == a

    def test_comparisons(self):
        assert apply_binary("<", 1, 2) is True
        assert apply_binary(">=", 2, 2) is True
        assert apply_binary("==", True, 1) is True
        assert apply_binary("!=", 0, False) is False

    def test_logical_ops_coerce(self):
        assert apply_binary("&&", 1, 0) is False
        assert apply_binary("||", 0, 2) is True

    def test_unary(self):
        assert apply_unary("-", 5) == -5
        assert apply_unary("!", 0) is True
        assert apply_unary("!", 3) is False

    def test_bool_arithmetic_coerces_to_int(self):
        assert apply_binary("+", True, True) == 2

    def test_non_numeric_operand_raises(self):
        with pytest.raises(PCLRuntimeError):
            apply_binary("+", PCLArray("a", "int", 1), 2)


class TestArrays:
    def test_default_values(self):
        assert PCLArray("a", "int", 3).items == [0, 0, 0]
        assert PCLArray("a", "float", 2).items == [0.0, 0.0]
        assert PCLArray("a", "bool", 1).items == [False]

    def test_get_set(self):
        array = PCLArray("a", "int", 3)
        array.set(1, 42)
        assert array.get(1) == 42

    def test_out_of_bounds(self):
        array = PCLArray("a", "int", 3)
        with pytest.raises(PCLRuntimeError):
            array.get(3)
        with pytest.raises(PCLRuntimeError):
            array.set(-1, 0)

    def test_fractional_index_rejected(self):
        array = PCLArray("a", "int", 3)
        with pytest.raises(PCLRuntimeError):
            array.get(1.5)

    def test_copy_is_independent(self):
        array = PCLArray("a", "int", 2)
        clone = array.copy()
        clone.set(0, 9)
        assert array.get(0) == 0


class TestBuiltins:
    def test_sqrt(self):
        assert call_pure_builtin("sqrt", [9]) == 3.0

    def test_sqrt_negative_raises(self):
        with pytest.raises(PCLRuntimeError):
            call_pure_builtin("sqrt", [-1])

    def test_abs_min_max_floor(self):
        assert call_pure_builtin("abs", [-4]) == 4
        assert call_pure_builtin("min", [3, 1, 2]) == 1
        assert call_pure_builtin("max", [3, 1, 2]) == 3
        assert call_pure_builtin("floor", [2.7]) == 2

    def test_len(self):
        assert call_pure_builtin("len", [PCLArray("a", "int", 5)]) == 5

    def test_len_of_scalar_raises(self):
        with pytest.raises(PCLRuntimeError):
            call_pure_builtin("len", [3])


class TestFormatting:
    def test_format_values(self):
        assert format_value(True) == "true"
        assert format_value(False) == "false"
        assert format_value(3) == "3"
        array = PCLArray("a", "int", 2)
        assert format_value(array) == "[0, 0]"

    def test_default_value(self):
        assert default_value("int") == 0
        assert default_value("float") == 0.0
        assert default_value("bool") is False
