"""Rendezvous/RPC tests (§6.2.3) — language, runtime, ordering, replay."""

import pytest

from repro import compile_program, ParallelDynamicGraph
from repro.core import EmulationPackage, is_race_free
from repro.lang import SemanticError, parse
from repro.runtime import build_interval_index, run_program

SERVER = """
entry compute;
shared int served;

proc server() {
    for (k = 0; k < 2; k = k + 1) {
        accept compute(int x, int y) {
            int result = x * 10 + y;
            reply result;
            served = served + 1;
        }
    }
}

proc main() {
    spawn server();
    int a = call compute(1, 2);
    int b = call compute(3, 4);
    join();
    print(a, b, served);
}
"""


class TestSemantics:
    def test_basic_rpc(self):
        for seed in range(8):
            record = run_program(SERVER, seed=seed)
            assert record.failure is None and record.deadlock is None
            assert record.output[0][1] == "12 34 2"

    def test_implicit_reply_is_zero(self):
        src = """
entry ping;
proc server() { accept ping() { } }
proc main() { spawn server(); int r = call ping(); join(); print(r); }
"""
        record = run_program(src, seed=0)
        assert record.output[0][1] == "0"

    def test_body_runs_while_caller_suspended(self):
        """The caller cannot observe intermediate state: the accept body
        completes its reply before the caller resumes."""
        src = """
entry get;
shared int stage;
proc server() {
    accept get() {
        stage = 1;
        stage = 2;
        reply stage;
    }
}
proc main() { spawn server(); int r = call get(); join(); assert(r == 2); }
"""
        for seed in range(10):
            record = run_program(src, seed=seed)
            assert record.failure is None, seed

    def test_work_after_reply_still_runs(self):
        record = run_program(SERVER, seed=1)
        assert record.shared_final["served"] == 2

    def test_two_servers_one_entry(self):
        src = """
entry work;
chan done;
proc server(int id) {
    accept work(int x) { reply x + id; }
    send(done, id);
}
proc main() {
    spawn server(100);
    spawn server(200);
    int a = call work(1);
    int b = call work(1);
    int d1 = recv(done);
    int d2 = recv(done);
    join();
    print(a + b);
}
"""
        for seed in range(6):
            record = run_program(src, seed=seed)
            assert record.failure is None and record.deadlock is None
            assert record.output[0][1] == "302"  # 101 + 201 in some order

    def test_arity_mismatch_fails(self):
        src = """
entry e;
proc server() { accept e(int a, int b) { reply a; } }
proc main() { spawn server(); int r = call e(1); join(); }
"""
        record = run_program(src, seed=0)
        assert record.failure is not None
        assert "caller passed 1" in record.failure.message

    def test_double_reply_fails(self):
        src = """
entry e;
proc server() { accept e() { reply 1; reply 2; } }
proc main() { spawn server(); int r = call e(); join(); }
"""
        record = run_program(src, seed=0)
        assert record.failure is not None
        assert "double reply" in record.failure.message

    def test_call_with_no_server_deadlocks(self):
        src = "entry e;\nproc main() { int r = call e(); }"
        record = run_program(src, seed=0)
        assert record.deadlock is not None
        assert "call(e)" in record.deadlock.blocked[0][1]

    def test_accept_with_no_caller_deadlocks(self):
        src = "entry e;\nproc main() { accept e() { } }"
        record = run_program(src, seed=0)
        assert record.deadlock is not None
        assert "accept(e)" in record.deadlock.blocked[0][1]


class TestSemanticChecks:
    def test_reply_outside_accept_rejected(self):
        with pytest.raises(SemanticError):
            compile_program("entry e;\nproc main() { reply 1; }")

    def test_call_unknown_entry_rejected(self):
        with pytest.raises(SemanticError):
            compile_program("proc main() { int r = call ghost(); }")

    def test_accept_unknown_entry_rejected(self):
        with pytest.raises(SemanticError):
            compile_program("proc main() { accept ghost() { } }")

    def test_accept_param_shadowing_rejected(self):
        with pytest.raises(SemanticError):
            compile_program(
                "entry e;\nproc main() { int x = 1; accept e(int x) { } }"
            )

    def test_entry_name_collision_rejected(self):
        with pytest.raises(SemanticError):
            compile_program("entry e;\nsem e = 1;\nproc main() { }")

    def test_pretty_round_trip(self):
        from repro.lang import program_to_str

        printed = program_to_str(parse(SERVER))
        assert program_to_str(parse(printed)) == printed
        assert "accept compute(int x, int y)" in printed
        assert "call compute(1, 2)" in printed


class TestOrderingAndRaces:
    def test_rendezvous_edges_present(self):
        record = run_program(SERVER, seed=1)
        labels = [e.label for e in record.history.edges]
        assert labels.count("rendezvous") == 4  # 2 calls x (call+reply edges)

    def test_caller_edge_has_zero_events(self):
        record = run_program(SERVER, seed=1)
        graph = ParallelDynamicGraph.from_history(record.history)
        caller_pid = 0
        call_edges = [
            e
            for e in graph.edges_of(caller_pid)
            if graph.node(e.start_uid).op == "call"
        ]
        assert call_edges
        assert all(e.is_empty for e in call_edges)

    def test_rendezvous_synchronises_shared_access(self):
        """State handed across the rendezvous is ordered: race-free."""
        src = """
entry put;
shared int box;
proc owner() {
    accept put(int v) {
        box = v;
        reply 0;
    }
    print(box);
}
proc main() { spawn owner(); int ack = call put(9); join(); }
"""
        for seed in range(6):
            record = run_program(src, seed=seed)
            assert is_race_free(record.history), seed

    def test_unsynchronised_access_still_races(self):
        src = """
entry nudge;
shared int X;
proc server() {
    accept nudge() { reply 0; }
    X = 1;
}
proc bystander() { X = 2; }
proc main() {
    spawn server();
    spawn bystander();
    int ack = call nudge();
    join();
}
"""
        record = run_program(src, seed=0)
        assert not is_race_free(record.history)


class TestReplay:
    def test_caller_replay_consumes_reply_from_log(self):
        record = run_program(SERVER, seed=2)
        emulation = EmulationPackage(record)
        index = build_interval_index(record.logs[0])
        main_info = next(i for i in index.values() if i.proc_name == "main")
        result = emulation.replay(0, main_info.interval_id)
        assert not result.halted, result.diagnostics
        assert result.output == ["12 34 2"]

    def test_server_replay_consumes_args_from_log(self):
        record = run_program(SERVER, seed=2)
        server_pid = next(
            pid for pid, name in record.process_names.items() if name == "server"
        )
        emulation = EmulationPackage(record)
        index = build_interval_index(record.logs[server_pid])
        info = next(i for i in index.values() if i.proc_name == "server")
        result = emulation.replay(server_pid, info.interval_id)
        assert not result.halted, result.diagnostics
        assert not [d for d in result.diagnostics if "divergence" in d]
        # The replay rebuilt both accept bodies' events.
        results = [e.value for e in result.events if e.var == "result"]
        assert results == [12, 34]

    def test_implicit_reply_replay(self):
        src = """
entry ping;
proc server() { accept ping() { } }
proc main() { spawn server(); int r = call ping(); join(); print(r); }
"""
        record = run_program(src, seed=0)
        server_pid = 1
        emulation = EmulationPackage(record)
        index = build_interval_index(record.logs[server_pid])
        info = next(iter(index.values()))
        result = emulation.replay(server_pid, info.interval_id)
        assert not result.halted, result.diagnostics
