"""Distributed breakpoints (§5.7 + the paper's companion work, ref [24]).

Setting a breakpoint at a statement halts *every* process; the per-process
open log intervals then replay to exactly each process's halt point,
giving the consistent global view the paper's restoration story promises.
"""

from repro import compile_program, Machine, PPDSession
from repro.core import PPDCommandLine, restore_shared_at
from repro.workloads import bank_safe, nested_calls


class TestBreakpointMechanics:
    def test_breakpoint_stops_before_statement(self):
        source = """
proc main() {
    int a = 1;
    int b = 2;
    print(a + b);
}
"""
        compiled = compile_program(source)
        # s2 is 'int b = 2;'
        record = Machine(compiled, seed=0, breakpoints={"s2"}).run()
        assert record.breakpoint_hit is not None
        assert record.breakpoint_hit.stmt_label == "s2"
        assert record.output == []  # the print never ran
        assert record.failure is None

    def test_all_processes_halt_together(self):
        compiled = compile_program(bank_safe(2, 50))
        labels = compiled.database.stmt_by_label
        # Break at the final print in main.
        target = next(
            label
            for label, node in labels.items()
            if "print" in compiled.database.statement_text(node)
        )
        record = Machine(compiled, seed=1, breakpoints={target}).run()
        assert record.breakpoint_hit is not None
        # Depositors had finished (main's print follows the recv loop),
        # but the machine stopped immediately without printing.
        assert record.output == []

    def test_no_breakpoint_no_effect(self):
        compiled = compile_program(nested_calls())
        plain = Machine(compiled, seed=0).run()
        with_bp_set = Machine(compiled, seed=0, breakpoints={"s999"}).run()
        assert plain.output == with_bp_set.output
        assert with_bp_set.breakpoint_hit is None


class TestDebuggingFromBreakpoint:
    def test_session_replays_to_halt_point(self):
        source = """
proc main() {
    int a = 10;
    int b = a * 2;
    int c = b + 1;
    print(c);
}
"""
        compiled = compile_program(source)
        record = Machine(compiled, seed=0, breakpoints={"s3"}).run()
        session = PPDSession(record)
        result = session.start()
        assert result.halted  # replay stops where the program did
        labels = {
            n.stmt_label for n in session.graph.nodes.values() if n.stmt_label
        }
        assert "s2" in labels  # b was assigned
        assert "s3" not in labels  # c was not

    def test_why_value_at_breakpoint(self):
        source = """
proc main() {
    int a = 10;
    int b = a * 2;
    int c = b + 1;
    print(c);
}
"""
        compiled = compile_program(source)
        record = Machine(compiled, seed=0, breakpoints={"s3"}).run()
        session = PPDSession(record)
        session.start()
        tree = session.why_value("b")
        assert tree is not None
        assert tree.root.node.value == 20
        assert tree.reaches(lambda n: n.label.startswith("a "))

    def test_restoration_at_breakpoint_time(self):
        compiled = compile_program(bank_safe(2, 4))
        labels = compiled.database.stmt_by_label
        target = next(
            label
            for label, node in labels.items()
            if "print" in compiled.database.statement_text(node)
        )
        record = Machine(compiled, seed=2, breakpoints={target}).run()
        state = restore_shared_at(record, record.breakpoint_hit.timestamp)
        assert state.shared["balance"] == 8  # all deposits landed pre-print

    def test_cli_where_reports_breakpoint(self):
        compiled = compile_program(nested_calls())
        record = Machine(compiled, seed=0, breakpoints={"s1"}).run()
        cli = PPDCommandLine(record)
        out = cli.execute("where")
        assert "breakpoint" in out
        assert "s1" in out
