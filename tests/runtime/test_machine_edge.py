"""Machine edge cases: interventions, sync-state snapshots, misc limits."""

import pytest

from repro import compile_program, Machine
from repro.runtime import PCLRuntimeError, run_program
from repro.workloads import bank_safe, producer_consumer


class TestInterventions:
    def test_intervention_on_shared(self):
        source = """
shared int SV;
proc main() { SV = 1; print(SV); }
"""
        compiled = compile_program(source)
        record = Machine(
            compiled, seed=0, interventions={(0, 2): [("SV", 99)]}
        ).run()
        assert record.output[0][1] == "99"

    def test_intervention_on_local(self):
        source = "proc main() { int a = 1; print(a); }"
        compiled = compile_program(source)
        record = Machine(
            compiled, seed=0, interventions={(0, 2): [("a", 42)]}
        ).run()
        assert record.output[0][1] == "42"

    def test_intervention_at_wrong_step_is_inert(self):
        source = "proc main() { int a = 1; print(a); }"
        compiled = compile_program(source)
        record = Machine(
            compiled, seed=0, interventions={(5, 1): [("a", 42)]}
        ).run()
        assert record.output[0][1] == "1"

    def test_multiple_interventions_same_point(self):
        source = "shared int A;\nshared int B;\nproc main() { print(A + B); }"
        compiled = compile_program(source)
        record = Machine(
            compiled, seed=0, interventions={(0, 1): [("A", 10), ("B", 20)]}
        ).run()
        assert record.output[0][1] == "30"


class TestSyncStateSnapshot:
    def test_semaphore_state_at_completion(self):
        record = run_program(bank_safe(2, 1), seed=0)
        value, holders = record.sync_state.semaphores["mutex"]
        assert value == 1  # released at the end
        assert holders == []

    def test_lock_holder_at_deadlock(self):
        source = """
lockvar l;
proc main() { lock(l); lock(l); }
"""
        record = run_program(source, seed=0)
        assert record.deadlock is not None
        assert record.sync_state.locks["l"] == 0  # main holds it

    def test_channel_backlog(self):
        source = """
chan c;
proc main() { send(c, 1); send(c, 2); }
"""
        record = run_program(source, seed=0)
        assert record.sync_state.channels["c"] == 2


class TestLimitsAndQuirks:
    def test_max_steps_is_a_hard_error(self):
        with pytest.raises(PCLRuntimeError):
            run_program(
                "proc main() { while (true) { int x = 0; } }", max_steps=500
            )

    def test_zero_quantum_clamped(self):
        compiled = compile_program(producer_consumer(3, 1))
        record = Machine(compiled, seed=0, quantum=0).run()
        assert record.failure is None

    def test_process_names_and_spawn_args_recorded(self):
        source = """
proc worker(int a, int b) { }
proc main() { spawn worker(3, 4); join(); }
"""
        record = run_program(source, seed=0)
        worker_pid = next(
            pid for pid, name in record.process_names.items() if name == "worker"
        )
        assert record.spawn_args[worker_pid] == [3, 4]

    def test_output_interleaves_pids(self):
        source = """
chan go;
proc child() { int x = recv(go); print("child"); send(go, 2); }
proc main() { spawn child(); send(go, 1); int y = recv(go); print("main"); join(); }
"""
        record = run_program(source, seed=0)
        pids = {pid for pid, _ in record.output}
        assert len(pids) == 2

    def test_rand_bound_must_be_positive(self):
        record = run_program("proc main() { print(rand(0)); }")
        assert record.failure is not None
        assert "must be positive" in record.failure.message

    def test_float_to_int_index_strictness(self):
        record = run_program("proc main() { int a[3]; print(a[1.5]); }")
        assert record.failure is not None
        assert "integral" in record.failure.message
