"""Log-file tests: entries, intervals, nesting, serialisation (§3.2.2, §5)."""

import json

from repro.compiler import EBlockPolicy
from repro.runtime import (
    InputLog,
    PCLArray,
    Prelog,
    SyncLog,
    SyncPrelog,
    build_interval_index,
    innermost_open_interval,
    run_program,
)
from repro.runtime.logging import decode_value, encode_value, snapshot_values
from repro.workloads import fib_recursive, fig53_program, nested_calls


class TestLogContents:
    def test_proc_eblocks_log_pre_and_post(self):
        record = run_program(nested_calls(), seed=0)
        log = record.logs[0]
        counts = log.entry_counts()
        # main, SubJ, SubK each prelog+postlog once.
        assert counts["Prelog"] == 3
        assert counts["Postlog"] == 3

    def test_prelog_captures_args(self):
        record = run_program(nested_calls(), seed=0)
        prelogs = [e for e in record.logs[0] if isinstance(e, Prelog)]
        subj = next(p for p in prelogs if p.proc_name == "SubJ")
        assert subj.args == [5]

    def test_postlog_captures_retval(self):
        record = run_program(nested_calls(), seed=0)
        index = build_interval_index(record.logs[0])
        subk = next(i for i in index.values() if i.proc_name == "SubK")
        postlog = record.logs[0].entries[subk.end_index]
        assert postlog.has_retval
        assert postlog.retval == 10  # 0+1+2+3+4

    def test_prelog_captures_shared_ref(self):
        record = run_program(fig53_program(), seed=1)
        for pid, log in record.logs.items():
            for entry in log:
                if isinstance(entry, Prelog) and entry.proc_name == "foo3":
                    assert "SV" in entry.values
                    return
        raise AssertionError("no foo3 prelog found")

    def test_inputs_logged(self):
        src = "proc main() { print(input() + rand(10)); }"
        record = run_program(src, inputs=[5])
        kinds = [e.source for e in record.logs[0] if isinstance(e, InputLog)]
        assert kinds == ["input", "rand"]

    def test_recv_value_logged(self):
        src = """
chan c;
proc a() { send(c, 77); }
proc main() { spawn a(); int v = recv(c); join(); }
"""
        record = run_program(src, seed=0)
        recvs = [e for e in record.logs[0] if isinstance(e, InputLog) and e.source == "recv"]
        assert [e.value for e in recvs] == [77]

    def test_sync_prelog_emitted_after_p(self):
        record = run_program(fig53_program(), seed=1)
        found = any(
            isinstance(entry, SyncPrelog) and "SV" in entry.values
            for log in record.logs.values()
            for entry in log
        )
        assert found

    def test_plain_mode_produces_no_log(self):
        record = run_program(nested_calls(), seed=0, mode="plain")
        assert record.log_entry_count() == 0


class TestIntervals:
    def test_nesting_tree(self):
        record = run_program(nested_calls(), seed=0)
        index = build_interval_index(record.logs[0])
        by_proc = {info.proc_name: info for info in index.values()}
        assert by_proc["SubK"].parent == by_proc["SubJ"].interval_id
        assert by_proc["SubJ"].parent == by_proc["main"].interval_id
        assert by_proc["main"].parent is None
        assert by_proc["SubJ"].children == [by_proc["SubK"].interval_id]

    def test_recursive_nesting(self):
        record = run_program(fib_recursive(6), seed=0)
        index = build_interval_index(record.logs[0])
        fib_intervals = [i for i in index.values() if i.proc_name == "fib"]
        assert len(fib_intervals) == 25  # calls of fib(6)
        # Every interval is closed (the program completed).
        assert all(not i.is_open for i in index.values())

    def test_open_interval_on_failure(self):
        src = """
func int boom(int x) { assert(x > 0); return x; }
proc main() { int a = boom(-1); }
"""
        record = run_program(src, seed=0)
        assert record.failure is not None
        open_info = innermost_open_interval(record.logs[0])
        assert open_info is not None
        assert open_info.proc_name == "boom"

    def test_no_open_intervals_on_success(self):
        record = run_program(nested_calls(), seed=0)
        assert innermost_open_interval(record.logs[0]) is None

    def test_loop_blocks_create_intervals(self):
        record = run_program(
            nested_calls(),
            seed=0,
            policy=EBlockPolicy(loop_block_min_stmts=1),
        )
        index = build_interval_index(record.logs[0])
        kinds = {info.block_kind for info in index.values()}
        assert "loop" in kinds

    def test_timestamps_monotone_per_process(self):
        record = run_program(fig53_program(), seed=2)
        for log in record.logs.values():
            stamps = [e.timestamp for e in log]
            assert stamps == sorted(stamps)


class TestSerialisation:
    def test_jsonl_round_trip_parses(self):
        record = run_program(fig53_program(), seed=1)
        for log in record.logs.values():
            text = log.to_jsonl()
            if not text:
                continue
            for line in text.splitlines():
                payload = json.loads(line)
                assert "kind" in payload and "t" in payload and "pid" in payload

    def test_byte_size_positive_and_consistent(self):
        record = run_program(nested_calls(), seed=0)
        log = record.logs[0]
        assert log.byte_size() == len(log.to_jsonl()) + 1
        assert record.log_bytes() >= log.byte_size()

    def test_array_values_encode(self):
        src = """
shared int m[3];
func int touch(int x) { m[0] = x; return m[0]; }
proc main() { int a = touch(9); print(a); }
"""
        record = run_program(src, seed=0)
        text = record.logs[0].to_jsonl()
        assert "__array__" in text

    def test_sync_logs_have_clocks(self):
        record = run_program(fig53_program(), seed=1)
        sync_entries = [
            e for log in record.logs.values() for e in log if isinstance(e, SyncLog)
        ]
        assert sync_entries
        assert all(e.clock for e in sync_entries)


class TestValueCopySemantics:
    """Regression tests: snapshot/encode must not alias live values."""

    def test_nested_array_round_trips_through_json(self):
        outer = PCLArray("outer", "int", 2)
        inner = PCLArray("inner", "int", 3)
        inner.set(1, 7)
        outer.items = [inner, 42]
        decoded = decode_value(json.loads(json.dumps(encode_value(outer))))
        assert isinstance(decoded, PCLArray)
        assert isinstance(decoded.items[0], PCLArray)
        assert decoded.items[0].items == [0, 7, 0]
        assert decoded.items[1] == 42

    def test_empty_array_round_trips(self):
        empty = PCLArray("e", "int", 0)
        decoded = decode_value(json.loads(json.dumps(encode_value(empty))))
        assert isinstance(decoded, PCLArray)
        assert decoded.items == []
        assert decoded.elem_type == "int"

    def test_snapshot_is_immune_to_later_mutation(self):
        array = PCLArray("m", "int", 3)
        array.set(0, 1)
        snap = snapshot_values({"m": array, "n": 5})
        # The program keeps running and mutates the array after logging.
        array.set(0, 999)
        assert snap["m"].items == [1, 0, 0]
        assert snap["m"] is not array

    def test_snapshot_deep_copies_nested_arrays(self):
        outer = PCLArray("outer", "int", 1)
        inner = PCLArray("inner", "int", 2)
        outer.items = [inner]
        snap = snapshot_values({"outer": outer})
        inner.set(0, 123)
        assert snap["outer"].items[0].items == [0, 0]

    def test_logged_prelog_values_unaffected_by_mutation(self):
        src = """
shared int m[3];
func int bump() { m[0] = m[0] + 1; return m[0]; }
proc main() {
    m[1] = 5;
    int r = bump();
    print(r);
}
"""
        record = run_program(src, seed=0)
        prelogs = [
            e
            for e in record.logs[0]
            if isinstance(e, Prelog) and e.proc_name == "bump" and "m" in e.values
        ]
        assert prelogs, "expected a bump() prelog snapshotting m"
        snap = prelogs[0].values["m"]
        # The snapshot shows m as it was at call time (m[0] still 0),
        # even though bump mutated it immediately afterwards.
        assert isinstance(snap, PCLArray)
        assert snap.items[0] == 0
        assert snap.items[1] == 5
