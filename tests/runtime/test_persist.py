"""Record persistence tests: the on-disk log file story (§5.6)."""

import pytest

from repro import compile_program, Machine, PPDSession, render_flowback
from repro.core import find_races_indexed
from repro.runtime import (
    load_record,
    record_from_json,
    record_to_json,
    run_program,
    save_record,
)
from repro.workloads import bank_race, buggy_average, fig53_program, nested_calls


def round_trip(record):
    return record_from_json(record_to_json(record))


class TestRoundTrip:
    def test_sequential_record(self):
        record = run_program(nested_calls(), seed=0)
        loaded = round_trip(record)
        assert loaded.output == record.output
        assert loaded.seed == record.seed
        assert loaded.log_entry_count() == record.log_entry_count()
        assert loaded.shared_final == record.shared_final

    def test_parallel_record_history(self):
        record = run_program(fig53_program(), seed=1)
        loaded = round_trip(record)
        assert len(loaded.history.nodes) == len(record.history.nodes)
        assert len(loaded.history.edges) == len(record.history.edges)
        assert len(loaded.history.segments) == len(record.history.segments)
        # Vector clocks survive: ordering queries agree.
        for uid_a in list(record.history.nodes)[:5]:
            for uid_b in list(record.history.nodes)[:5]:
                assert record.history.node_reaches(uid_a, uid_b) == loaded.history.node_reaches(
                    uid_a, uid_b
                )

    def test_failure_info_survives(self):
        record = run_program(
            buggy_average(5), seed=0, inputs=[10, 20, 30, 40, 50]
        )
        loaded = round_trip(record)
        assert loaded.failure is not None
        assert loaded.failure.message == record.failure.message
        assert loaded.process_steps == record.process_steps

    def test_plain_record_rejected(self):
        record = run_program(nested_calls(), seed=0, mode="plain")
        with pytest.raises(ValueError):
            record_to_json(record)

    def test_version_check(self):
        import json

        record = run_program(nested_calls(), seed=0)
        body = json.loads(record_to_json(record))
        body["version"] = 99
        with pytest.raises(ValueError):
            record_from_json(json.dumps(body))

    def test_scheduler_totals_survive(self):
        record = run_program(fig53_program(), seed=1)
        loaded = round_trip(record)
        assert loaded.preemptions == record.preemptions
        assert loaded.context_switches == record.context_switches

    def test_file_round_trip(self, tmp_path):
        record = run_program(nested_calls(), seed=0)
        path = tmp_path / "run.ppd.json"
        save_record(record, str(path))
        loaded = load_record(str(path))
        assert loaded.output == record.output


class TestPersistError:
    """Corrupt and future-version input raises the typed PersistError
    (never a raw KeyError / json.JSONDecodeError)."""

    def _body(self):
        import json

        return json.loads(record_to_json(run_program(nested_calls(), seed=0)))

    def test_not_json(self):
        from repro.runtime import PersistError

        with pytest.raises(PersistError) as excinfo:
            record_from_json("{definitely not json")
        assert "corrupt" in str(excinfo.value)

    def test_not_an_object(self):
        from repro.runtime import PersistError

        with pytest.raises(PersistError):
            record_from_json("[1, 2, 3]")

    def test_future_version_names_field(self):
        import json

        from repro.runtime import PersistError

        body = self._body()
        body["version"] = 99
        with pytest.raises(PersistError) as excinfo:
            record_from_json(json.dumps(body))
        assert excinfo.value.field == "version"
        assert "99" in str(excinfo.value)

    def test_missing_version_names_field(self):
        import json

        from repro.runtime import PersistError

        body = self._body()
        del body["version"]
        with pytest.raises(PersistError) as excinfo:
            record_from_json(json.dumps(body))
        assert excinfo.value.field == "version"

    def test_missing_field_is_named(self):
        import json

        from repro.runtime import PersistError

        body = self._body()
        del body["history"]
        with pytest.raises(PersistError) as excinfo:
            record_from_json(json.dumps(body))
        assert excinfo.value.field == "history"

    def test_structurally_broken_body_is_wrapped(self):
        import json

        from repro.runtime import PersistError

        body = self._body()
        body["logs"] = {"0": [{"kind": "NoSuchEntry", "t": 0, "pid": 0}]}
        with pytest.raises(PersistError) as excinfo:
            record_from_json(json.dumps(body))
        assert "corrupt record" in str(excinfo.value)

    def test_load_record_carries_path(self, tmp_path):
        from repro.runtime import PersistError, load_record

        path = tmp_path / "broken.ppd.json"
        path.write_text("{nope")
        with pytest.raises(PersistError) as excinfo:
            load_record(str(path))
        assert excinfo.value.path == str(path)
        assert str(path) in str(excinfo.value)

    def test_persist_error_is_a_value_error(self):
        from repro.runtime import PersistError

        assert issubclass(PersistError, ValueError)


class TestDebuggingLoadedRecords:
    def test_session_on_loaded_record(self):
        record = run_program(
            buggy_average(5), seed=0, inputs=[10, 20, 30, 40, 50]
        )
        loaded = round_trip(record)
        session = PPDSession(loaded)
        result = session.start()
        assert result.halted
        failure = session.failure_event()
        tree = session.flowback_expanding(failure.uid, max_depth=9)
        assert "total" in render_flowback(tree)

    def test_flowback_identical_before_and_after_persistence(self):
        record = run_program(
            buggy_average(5), seed=0, inputs=[10, 20, 30, 40, 50]
        )
        def slice_of(rec):
            from repro.core import slice_statements

            session = PPDSession(rec)
            session.start()
            failure = session.failure_event()
            return slice_statements(
                session.flowback_expanding(failure.uid, max_depth=9)
            )

        assert slice_of(record) == slice_of(round_trip(record))

    def test_race_detection_on_loaded_record(self):
        record = run_program(bank_race(2, 2), seed=3)
        loaded = round_trip(record)
        original = find_races_indexed(record.history)
        reloaded = find_races_indexed(loaded.history)
        key = lambda r: (r.seg_id_a, r.seg_id_b, r.variable, r.kind)
        assert sorted(map(key, original.races)) == sorted(map(key, reloaded.races))

    def test_loaded_record_with_policy(self):
        from repro.compiler import EBlockPolicy

        compiled = compile_program(
            nested_calls(), policy=EBlockPolicy(loop_block_min_stmts=1)
        )
        record = Machine(compiled, seed=0, mode="logged").run()
        loaded = round_trip(record)
        assert loaded.compiled.policy == compiled.policy
        session = PPDSession(loaded)
        session.start()
        assert session.graph.nodes
