"""Parallel machine semantics: processes, sync primitives, channels."""

from repro import compile_program, Machine
from repro.runtime import ProcState, run_program
from repro.workloads import bank_safe, dining_philosophers, pipeline, producer_consumer


def run(source, seed=0, **kwargs):
    return run_program(source, seed=seed, **kwargs)


class TestSpawnJoin:
    def test_spawn_runs_child(self):
        src = """
shared int SV;
proc child() { SV = 42; }
proc main() { spawn child(); join(); print(SV); }
"""
        record = run(src)
        assert record.output == [(0, "42")]

    def test_spawn_args_passed(self):
        src = """
shared int SV;
proc child(int a, int b) { SV = a * 10 + b; }
proc main() { spawn child(3, 4); join(); print(SV); }
"""
        assert run(src).output[0][1] == "34"

    def test_join_waits_for_all_children(self):
        src = """
shared int SV;
proc child(int k) { SV = SV + k; }
proc main() {
    spawn child(1);
    spawn child(2);
    spawn child(4);
    join();
    print(SV);
}
"""
        # join() guarantees all three increments happened (they are racy in
        # ordering but all complete before the print).  Sum is order-free
        # here only if increments don't interleave mid-statement; use
        # disjoint bits and several seeds to confirm.
        for seed in range(8):
            record = run(src, seed=seed)
            assert record.failure is None

    def test_spawn_and_forget_still_completes(self):
        src = """
shared int SV;
proc child() { SV = 7; }
proc main() { spawn child(); }
"""
        record = run(src)
        # Machine runs until all processes finish, even after main exits.
        assert record.shared_final["SV"] == 7

    def test_grandchildren(self):
        src = """
shared int SV;
proc leaf() { SV = SV + 1; }
proc mid() { spawn leaf(); spawn leaf(); join(); }
proc main() { spawn mid(); join(); print(SV); }
"""
        record = run(src)
        assert record.output[0][1] == "2"

    def test_process_states_final(self):
        src = "proc child() { }\nproc main() { spawn child(); join(); }"
        compiled = compile_program(src)
        machine = Machine(compiled, seed=0)
        machine.run()
        assert all(p.state is ProcState.DONE for p in machine.processes.values())


class TestSemaphores:
    def test_mutex_protects_counter(self):
        for seed in range(6):
            record = run(bank_safe(3, 4), seed=seed)
            assert record.failure is None, (seed, record.failure)
            assert record.output[-1][1] == "balance = 12"

    def test_semaphore_as_signal(self):
        src = """
shared int SV;
sem ready = 0;
proc producer() { SV = 99; V(ready); }
proc consumer() { P(ready); assert(SV == 99); }
proc main() { spawn consumer(); spawn producer(); join(); print("ok"); }
"""
        for seed in range(10):
            record = run(src, seed=seed)
            assert record.failure is None

    def test_counting_semaphore(self):
        src = """
sem slots = 2;
sem guard = 1;
shared int active;
shared int peak;
proc worker() {
    P(slots);
    P(guard);
    active = active + 1;
    if (active > peak) { peak = active; }
    V(guard);
    P(guard);
    active = active - 1;
    V(guard);
    V(slots);
}
proc main() {
    spawn worker(); spawn worker(); spawn worker(); spawn worker();
    join();
    print(peak);
}
"""
        for seed in range(6):
            record = run(src, seed=seed)
            assert record.failure is None
            assert int(record.output[0][1]) <= 2

    def test_sem_edge_created_on_handoff(self):
        src = """
sem s = 0;
proc a() { V(s); }
proc b() { P(s); }
proc main() { spawn b(); spawn a(); join(); }
"""
        record = run(src, seed=1)
        labels = [e.label for e in record.history.edges]
        assert "sem" in labels


class TestLocks:
    def test_lock_mutual_exclusion(self):
        src = """
lockvar l;
shared int counter;
proc worker() {
    for (i = 0; i < 5; i = i + 1) {
        lock(l);
        int old = counter;
        counter = old + 1;
        unlock(l);
    }
}
proc main() { spawn worker(); spawn worker(); join(); print(counter); }
"""
        for seed in range(6):
            record = run(src, seed=seed)
            assert record.output[0][1] == "10"

    def test_unlock_by_non_holder_fails(self):
        src = """
lockvar l;
proc main() { unlock(l); }
"""
        record = run(src)
        assert record.failure is not None

    def test_lock_release_acquire_edge(self):
        src = """
lockvar l;
proc a() { lock(l); unlock(l); }
proc main() { lock(l); unlock(l); spawn a(); join(); }
"""
        record = run(src, seed=0)
        assert any(e.label == "lock" for e in record.history.edges)


class TestChannels:
    def test_unbounded_channel_buffers(self):
        src = """
chan c;
proc main() {
    send(c, 1); send(c, 2); send(c, 3);
    print(recv(c), recv(c), recv(c));
}
"""
        assert run(src).output[0][1] == "1 2 3"

    def test_fifo_order_preserved(self):
        record = run(producer_consumer(10, 3), seed=4)
        assert record.failure is None
        total = sum(i * i for i in range(1, 11))
        assert record.output[0][1] == f"consumed = {total}"

    def test_synchronous_channel_blocks_sender(self):
        src = """
chan c[0];
shared int mark;
proc sender() { send(c, 5); mark = 1; }
proc main() {
    spawn sender();
    assert(mark == 0);
    int v = recv(c);
    print(v);
    join();
}
"""
        # mark stays 0 until the rendezvous completes, whatever the seed:
        # the sender cannot pass its send before main receives.
        for seed in range(10):
            record = run(src, seed=seed)
            assert record.failure is None, (seed, record.failure)
            assert record.output[0][1] == "5"

    def test_bounded_channel_blocks_when_full(self):
        src = """
chan c[1];
proc main() {
    send(c, 1);
    print(recv(c));
}
"""
        assert run(src).output[0][1] == "1"

    def test_bounded_producer_blocks_and_resumes(self):
        record = run(producer_consumer(6, 1), seed=2)
        assert record.failure is None

    def test_msg_edges_created(self):
        src = """
chan c;
proc a() { send(c, 1); }
proc main() { spawn a(); print(recv(c)); join(); }
"""
        record = run(src, seed=0)
        assert any(e.label == "msg" for e in record.history.edges)

    def test_unblock_edge_for_blocking_send(self):
        src = """
chan c[0];
proc a() { send(c, 1); }
proc main() { spawn a(); int v = recv(c); join(); }
"""
        record = run(src, seed=0)
        assert any(e.label == "unblock" for e in record.history.edges)

    def test_pipeline_totals(self):
        record = run(pipeline(3, 5), seed=5)
        assert record.failure is None
        # Each item gains +1+2+3 = 6; items are 0..4 (sum 10); total 40.
        assert record.output[0][1] == "total = 40"


class TestDeadlockDetection:
    def test_deadlock_recorded(self):
        compiled = compile_program(dining_philosophers(2))
        found = False
        for seed in range(30):
            record = Machine(compiled, seed=seed).run()
            if record.deadlock is not None:
                found = True
                pids = {pid for pid, _, _ in record.deadlock.blocked}
                assert len(pids) >= 2
                break
        assert found, "no deadlock in 30 seeds"

    def test_courteous_philosophers_never_deadlock(self):
        compiled = compile_program(dining_philosophers(3, courteous=True))
        for seed in range(15):
            record = Machine(compiled, seed=seed).run()
            assert record.deadlock is None
            assert record.output[0][1] == "meals = 3"

    def test_recv_with_no_sender_deadlocks(self):
        src = "chan c;\nproc main() { int v = recv(c); }"
        record = run(src)
        assert record.deadlock is not None
        assert "recv(c)" in record.deadlock.blocked[0][1]


class TestDeterminism:
    def test_same_seed_same_behavior(self):
        src = bank_safe(3, 3)
        first = run(src, seed=11)
        second = run(src, seed=11)
        assert first.output == second.output
        assert first.total_steps == second.total_steps
        assert len(first.history.nodes) == len(second.history.nodes)

    def test_different_seeds_differ_somewhere(self):
        from repro.workloads import bank_race

        src = bank_race(2, 4)
        outputs = {run(src, seed=s).output[-1][1] for s in range(25)}
        assert len(outputs) > 1, "nondeterminism never manifested"

    def test_plain_and_logged_same_interleaving(self):
        src = bank_safe(2, 3)
        plain = run(src, seed=9, mode="plain")
        logged = run(src, seed=9, mode="logged")
        assert plain.output == logged.output
        assert plain.total_steps == logged.total_steps
