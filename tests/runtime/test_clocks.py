"""Vector clock properties — the O(1) happened-before test must agree with
explicit reachability over the synchronization graph."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_program, Machine
from repro.runtime import VectorClock, happened_before_or_equal
from repro.workloads import bank_safe, fig61_program, pipeline


class TestVectorClockBasics:
    def test_tick_increments_own_component(self):
        clock = VectorClock()
        clock.tick(3)
        clock.tick(3)
        assert clock.get(3) == 2
        assert clock.get(0) == 0

    def test_merge_takes_componentwise_max(self):
        a = VectorClock({0: 3, 1: 1})
        b = VectorClock({0: 2, 1: 5, 2: 1})
        a.merge(b)
        assert a.counts == {0: 3, 1: 5, 2: 1}

    def test_copy_is_independent(self):
        a = VectorClock({0: 1})
        b = a.copy()
        b.tick(0)
        assert a.get(0) == 1

    def test_leq(self):
        assert VectorClock({0: 1}).leq(VectorClock({0: 2, 1: 1}))
        assert not VectorClock({0: 2}).leq(VectorClock({0: 1}))


@st.composite
def clock_pairs(draw):
    pids = range(4)
    counts_a = {p: draw(st.integers(0, 5)) for p in pids}
    counts_b = {p: draw(st.integers(0, 5)) for p in pids}
    return VectorClock(counts_a), VectorClock(counts_b)


@given(clock_pairs())
@settings(max_examples=200, deadline=None)
def test_leq_is_partial_order(pair):
    a, b = pair
    assert a.leq(a)
    if a.leq(b) and b.leq(a):
        for p in set(a.counts) | set(b.counts):
            assert a.get(p) == b.get(p)


def _reachability(history):
    """Explicit transitive closure over program order + sync edges."""
    succ = {uid: set() for uid in history.nodes}
    for uids in history.per_process.values():
        for first, second in zip(uids, uids[1:]):
            succ[first].add(second)
    for edge in history.edges:
        succ[edge.src_uid].add(edge.dst_uid)

    reach = {}
    order = sorted(history.nodes, key=lambda u: history.nodes[u].timestamp, reverse=True)
    for uid in order:
        closure = {uid}
        for nxt in succ[uid]:
            closure |= reach.get(nxt, {nxt})
        reach[uid] = closure
    return reach


def assert_clocks_match_reachability(record):
    history = record.history
    reach = _reachability(history)
    nodes = list(history.nodes.values())
    for a in nodes:
        for b in nodes:
            expected = b.uid in reach[a.uid]
            actual = happened_before_or_equal(a.clock, a.pid, b.clock)
            assert actual == expected, (a, b)


class TestClocksAgainstExplicitReachability:
    def test_fig61(self):
        record = Machine(compile_program(fig61_program()), seed=1).run()
        assert_clocks_match_reachability(record)

    def test_bank_safe_multiple_seeds(self):
        compiled = compile_program(bank_safe(2, 2))
        for seed in range(5):
            record = Machine(compiled, seed=seed).run()
            assert_clocks_match_reachability(record)

    def test_pipeline(self):
        record = Machine(compile_program(pipeline(2, 3)), seed=3).run()
        assert_clocks_match_reachability(record)
