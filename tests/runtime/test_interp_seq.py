"""Sequential interpreter semantics, end to end through the machine."""

import pytest

from repro.runtime import PCLRuntimeError, run_program


def output_of(source, **kwargs):
    record = run_program(source, **kwargs)
    assert record.failure is None, record.failure
    return [text for _, text in record.output]


class TestBasics:
    def test_arithmetic_and_print(self):
        assert output_of("proc main() { print(1 + 2 * 3); }") == ["7"]

    def test_variables(self):
        assert output_of("proc main() { int a = 5; int b = a * a; print(b); }") == ["25"]

    def test_default_initialisation(self):
        assert output_of("proc main() { int a; float f; bool b; print(a, f, b); }") == [
            "0 0.0 false"
        ]

    def test_string_and_values_in_print(self):
        assert output_of('proc main() { print("x =", 1, true); }') == ["x = 1 true"]

    def test_float_arithmetic(self):
        assert output_of("proc main() { float f = 1.5; print(f * 2); }") == ["3.0"]

    def test_uninitialised_read_of_undeclared_is_semantic_error(self):
        from repro.lang import SemanticError

        with pytest.raises(SemanticError):
            run_program("proc main() { print(ghost); }")


class TestControlFlow:
    def test_if_true_branch(self):
        assert output_of("proc main() { if (2 > 1) { print(1); } else { print(2); } }") == ["1"]

    def test_if_false_branch(self):
        assert output_of("proc main() { if (1 > 2) { print(1); } else { print(2); } }") == ["2"]

    def test_while_loop(self):
        src = (
            "proc main() { int s = 0; int i = 0; "
            "while (i < 5) { s = s + i; i = i + 1; } print(s); }"
        )
        assert output_of(src) == ["10"]

    def test_for_loop(self):
        src = "proc main() { int s = 0; for (i = 1; i <= 4; i = i + 1) { s = s + i; } print(s); }"
        assert output_of(src) == ["10"]

    def test_break(self):
        src = (
            "proc main() { int i = 0; "
            "while (true) { i = i + 1; if (i == 3) { break; } } print(i); }"
        )
        assert output_of(src) == ["3"]

    def test_continue(self):
        src = (
            "proc main() { int s = 0; for (i = 0; i < 6; i = i + 1) {"
            " if (i % 2 == 0) { continue; } s = s + i; } print(s); }"
        )
        assert output_of(src) == ["9"]

    def test_nested_loops(self):
        src = (
            "proc main() { int s = 0;"
            " for (i = 0; i < 3; i = i + 1) { for (j = 0; j < 3; j = j + 1) { s = s + 1; } }"
            " print(s); }"
        )
        assert output_of(src) == ["9"]

    def test_short_circuit_and(self):
        # Division by zero on the right is never evaluated.
        src = "proc main() { int z = 0; if (false && 1 / z > 0) { print(1); } print(2); }"
        assert output_of(src) == ["2"]

    def test_short_circuit_or(self):
        src = "proc main() { int z = 0; if (true || 1 / z > 0) { print(1); } }"
        assert output_of(src) == ["1"]


class TestFunctions:
    def test_simple_call(self):
        src = "func int dbl(int x) { return x * 2; }\nproc main() { print(dbl(21)); }"
        assert output_of(src) == ["42"]

    def test_nested_calls(self):
        src = (
            "func int inc(int x) { return x + 1; }\n"
            "func int twice(int x) { return inc(inc(x)); }\n"
            "proc main() { print(twice(5)); }"
        )
        assert output_of(src) == ["7"]

    def test_recursion(self):
        src = (
            "func int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }\n"
            "proc main() { print(fact(6)); }"
        )
        assert output_of(src) == ["720"]

    def test_call_in_expression(self):
        src = "func int f(int x) { return x + 1; }\nproc main() { print(f(1) * f(2)); }"
        assert output_of(src) == ["6"]

    def test_proc_call_statement(self):
        src = (
            "shared int SV;\n"
            "proc bump() { SV = SV + 1; }\n"
            "proc main() { bump(); bump(); print(SV); }"
        )
        assert output_of(src) == ["2"]

    def test_missing_return_raises(self):
        src = "func int f(int x) { if (x > 0) { return 1; } }\nproc main() { print(f(-1)); }"
        record = run_program(src)
        assert record.failure is not None
        assert "did not return" in record.failure.message

    def test_early_return_skips_rest(self):
        src = (
            "func int f(int x) { return x; print(999); }\n"
            "proc main() { print(f(3)); }"
        )
        assert output_of(src) == ["3"]


class TestArraysAndBuiltins:
    def test_array_fill_and_read(self):
        src = (
            "proc main() { int a[4]; for (i = 0; i < 4; i = i + 1) { a[i] = i * i; }"
            " print(a[0], a[1], a[2], a[3]); }"
        )
        assert output_of(src) == ["0 1 4 9"]

    def test_len_builtin(self):
        assert output_of("proc main() { int a[7]; print(len(a)); }") == ["7"]

    def test_shared_array(self):
        src = "shared int m[3];\nproc main() { m[1] = 5; print(m[1]); }"
        assert output_of(src) == ["5"]

    def test_index_out_of_bounds_fails(self):
        record = run_program("proc main() { int a[2]; a[5] = 1; }")
        assert record.failure is not None
        assert "out of bounds" in record.failure.message

    def test_sqrt(self):
        assert output_of("proc main() { print(sqrt(16)); }") == ["4.0"]

    def test_input_stream(self):
        src = "proc main() { print(input() + input()); }"
        assert output_of(src, inputs=[20, 22]) == ["42"]

    def test_input_exhausted_defaults_to_zero(self):
        assert output_of("proc main() { print(input()); }", inputs=[]) == ["0"]

    def test_rand_is_seeded(self):
        src = "proc main() { print(rand(1000), rand(1000)); }"
        first = output_of(src, input_seed=5)
        second = output_of(src, input_seed=5)
        third = output_of(src, input_seed=6)
        assert first == second
        assert first != third


class TestFailures:
    def test_assert_failure_recorded(self):
        record = run_program("proc main() { int a = 1; assert(a == 2); print(a); }")
        assert record.failure is not None
        assert record.failure.kind == "assert"
        assert record.output == []  # halted before the print

    def test_runtime_failure_site(self):
        record = run_program("proc main() { int z = 0; int x = 1 / z; }")
        assert record.failure is not None
        assert record.failure.kind == "runtime"
        assert record.failure.node_id > 0

    def test_infinite_loop_guard(self):
        with pytest.raises(PCLRuntimeError):
            run_program("proc main() { while (true) { int x = 1; } }", max_steps=5000)


class TestModeEquivalence:
    def test_logged_and_plain_agree(self):
        src = (
            "func int f(int n) { int s = 0; "
            "for (i = 0; i < n; i = i + 1) { s = s + i; } return s; }\n"
            "proc main() { print(f(10)); }"
        )
        plain = run_program(src, mode="plain")
        logged = run_program(src, mode="logged")
        traced = run_program(src, mode="plain", trace=True)
        assert plain.output == logged.output == traced.output
        assert logged.log_entry_count() > 0
        assert plain.log_entry_count() == 0


class TestRecursionLimits:
    def test_deep_recursion_works(self):
        src = (
            "func int down(int n) { if (n <= 0) { return 0; } return down(n - 1) + 1; }\n"
            "proc main() { print(down(800)); }"
        )
        assert output_of(src) == ["800"]

    def test_runaway_recursion_fails_cleanly(self):
        src = (
            "func int forever(int n) { return forever(n + 1); }\n"
            "proc main() { print(forever(0)); }"
        )
        record = run_program(src, max_steps=3_000_000)
        assert record.failure is not None
        assert "call depth exceeded" in record.failure.message
