"""Preemption-granularity ablation (DESIGN.md §6 item 4).

The scheduler's quantum controls how coarsely processes interleave.  Races
must be *detected* under any granularity — even a quantum so large that the
race never *manifests* — because detection reads the parallel dynamic
graph's ordering, not the observed values.
"""

from repro import compile_program, Machine
from repro.core import find_races_indexed
from repro.workloads import bank_race, bank_safe


class TestQuantumAblation:
    def test_coarse_quantum_hides_but_detection_survives(self):
        compiled = compile_program(bank_race(2, 2))
        manifested_coarse = 0
        for seed in range(10):
            record = Machine(compiled, seed=seed, mode="logged", quantum=10_000).run()
            if record.failure is not None:
                manifested_coarse += 1
            scan = find_races_indexed(record.history)
            assert scan.races, f"race undetected at quantum=10000, seed {seed}"
        # With effectively run-to-completion scheduling the lost update
        # cannot happen: each depositor's read-modify-write is atomic.
        assert manifested_coarse == 0

    def test_fine_quantum_manifests_sometimes(self):
        compiled = compile_program(bank_race(2, 2))
        manifested_fine = sum(
            1
            for seed in range(10)
            if Machine(compiled, seed=seed, mode="logged", quantum=1).run().failure
            is not None
        )
        assert manifested_fine > 0

    def test_quantum_does_not_break_correct_programs(self):
        compiled = compile_program(bank_safe(2, 3))
        for quantum in (1, 3, 100):
            for seed in range(4):
                record = Machine(
                    compiled, seed=seed, mode="logged", quantum=quantum
                ).run()
                assert record.failure is None
                assert record.output[-1][1] == "balance = 6"
                assert find_races_indexed(record.history).is_race_free

    def test_quantum_changes_interleavings(self):
        compiled = compile_program(bank_safe(2, 3))
        fine = Machine(compiled, seed=5, mode="logged", quantum=1).run()
        coarse = Machine(compiled, seed=5, mode="logged", quantum=50).run()
        # Same final result, but (almost surely) different sync orders.
        assert fine.output == coarse.output
        fine_order = [n.pid for n in sorted(fine.history.nodes.values(), key=lambda n: n.timestamp)]
        coarse_order = [
            n.pid
            for n in sorted(coarse.history.nodes.values(), key=lambda n: n.timestamp)
        ]
        assert fine_order != coarse_order
