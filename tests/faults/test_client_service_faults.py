"""Client/service fault handling: typed connection errors, retry-safe
retries over dropped and stalled sockets, and the circuit breaker."""

import pytest

from repro import faults
from repro.server import (
    CircuitBreaker,
    ConnectFailed,
    ConnectionLost,
    DebugClient,
    DebugService,
    RETRY_SAFE_OPS,
    RETRYABLE_ERROR_CODES,
    ServerError,
)
from repro.workloads import buggy_average

AVG_INPUTS = [10, 20, 30, 40, 50]


@pytest.fixture()
def service(tmp_path):
    svc = DebugService(port=0, request_timeout_s=30.0, spool_dir=str(tmp_path / "spool"))
    svc.start()
    yield svc
    svc.shutdown()


def make_client(service, **kwargs):
    kwargs.setdefault("timeout", 10.0)
    client = DebugClient(service.host, service.port, **kwargs)
    client.open()
    return client


class TestTypedConnectionErrors:
    def test_connect_refused_is_connect_failed(self):
        client = DebugClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(ConnectFailed) as excinfo:
            client.ping()
        # Back-compat: both new types remain ConnectionError (and OSError).
        assert isinstance(excinfo.value, ConnectionError)
        assert isinstance(excinfo.value, OSError)

    def test_mid_request_death_is_connection_lost(self, service):
        client = make_client(service)
        with client:
            session = client.open_program(
                buggy_average(5), seed=0, inputs=AVG_INPUTS
            )
            with faults.inject("socket.drop:n=1"):
                with pytest.raises(ConnectionLost):
                    session.execute("where")

    def test_connection_lost_subclasses_connection_error(self):
        assert issubclass(ConnectionLost, ConnectionError)
        assert issubclass(ConnectFailed, ConnectionError)


class TestRetryTransparency:
    def test_dropped_reply_retried_transparently(self, service):
        client = make_client(service, max_retries=3, retry_backoff_s=0.01)
        with client:
            session = client.open_program(
                buggy_average(5), seed=0, inputs=AVG_INPUTS
            )
            expected = session.execute("where")
            with faults.inject("socket.drop:n=2") as plan:
                assert session.execute("where") == expected
                assert session.execute("output") != ""
            assert plan.total_fired() == 2
            assert client.reconnects == 2
            assert client.retries == 2

    def test_stalled_reply_absorbed(self, service):
        client = make_client(service, max_retries=3, retry_backoff_s=0.01)
        with client:
            session = client.open_program(
                buggy_average(5), seed=0, inputs=AVG_INPUTS
            )
            expected = session.execute("where")
            with faults.inject("socket.stall:n=1,s=0.1") as plan:
                assert session.execute("where") == expected
            assert plan.total_fired() == 1
            assert client.retries == 0  # absorbed by the timeout, not retried

    def test_unsafe_op_is_not_retried(self, service, tmp_path):
        """A lost connection mid-``save`` must surface, not re-send: the
        client cannot know whether the first attempt took effect."""
        client = make_client(service, max_retries=3, retry_backoff_s=0.01)
        with client:
            session = client.open_program(
                buggy_average(5), seed=0, inputs=AVG_INPUTS
            )
            with faults.inject("socket.drop:n=1"):
                with pytest.raises(ConnectionLost):
                    client.call(
                        "save",
                        session=session.sid,
                        args=[str(tmp_path / "out.ppd.json")],
                    )
            assert client.retries == 0

    def test_retry_taxonomy(self):
        assert "save" not in RETRY_SAFE_OPS
        assert "load" not in RETRY_SAFE_OPS
        assert "expand" not in RETRY_SAFE_OPS
        assert {"where", "races", "why", "ping", "list"} <= RETRY_SAFE_OPS
        assert RETRYABLE_ERROR_CODES == {"timeout", "server-busy"}

    def test_server_error_retryable_property(self):
        assert ServerError("timeout", "deadline").retryable
        assert ServerError("server-busy", "full").retryable
        assert not ServerError("unknown-session", "gone").retryable


class TestCircuitBreaker:
    def test_opens_on_consecutive_failures_only(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, time_fn=lambda: clock[0])
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert not breaker.record_success()  # resets the streak
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third consecutive -> opens
        assert breaker.is_open

    def test_closes_only_after_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, time_fn=lambda: clock[0])
        assert breaker.record_failure()
        assert not breaker.record_success()  # cooldown not met
        clock[0] = 11.0
        assert breaker.record_success()
        assert not breaker.is_open

    def test_failures_while_open_extend_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_s=10.0, time_fn=lambda: clock[0])
        assert breaker.record_failure()
        clock[0] = 9.0
        assert not breaker.record_failure()  # still open, window pushed out
        clock[0] = 18.0
        assert not breaker.record_success()  # 9s since last failure < 10s
        clock[0] = 19.5
        assert breaker.record_success()

    def test_service_sheds_pools_when_breaker_opens(self, tmp_path):
        """Timeout failures open the breaker; the session manager drops
        to degraded pool-less mode and 'list' reports it; a later success
        past the cooldown restores."""
        service = DebugService(
            port=0,
            request_timeout_s=30.0,
            spool_dir=str(tmp_path / "spool"),
            pool_jobs=2,
            breaker_threshold=2,
            breaker_cooldown_s=0.0,
        )
        service.start()
        try:
            client = make_client(service)
            with client:
                session = client.open_program(
                    buggy_average(5), seed=0, inputs=AVG_INPUTS
                )
                expected = session.execute("where")
                from repro.server.protocol import Response, error_response

                service._feed_breaker(error_response(0, "timeout", "x"))
                service._feed_breaker(error_response(0, "timeout", "x"))
                assert service.breaker.is_open
                assert service.sessions.degraded
                info = client.call("list").data
                assert info["degraded"] is True
                assert info["breaker"]["open"] is True
                # Commands still answer byte-identically while degraded.
                assert session.execute("where") == expected
                # The successful 'list'/'where' round past the cooldown
                # closed the breaker again and restored pools.
                assert not service.breaker.is_open
                assert not service.sessions.degraded
                service._feed_breaker(Response(id=0, ok=True))
        finally:
            service.shutdown()
