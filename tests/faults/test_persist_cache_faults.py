"""Persist-record integrity (content digests, typed errors, quarantine)
and replay-cache spill fault absorption."""

import json
import os

import pytest

from repro import Machine, compile_program, faults
from repro.core.emulation import interval_indexes
from repro.perf import ReplayCache, ReplayPool
from repro.runtime.persist import (
    PersistError,
    RecordCorruptError,
    RecordDigestError,
    RecordIOError,
    load_record,
    record_from_json,
    record_to_json,
    save_record,
)
from repro.workloads import fig61_program


@pytest.fixture(scope="module")
def record():
    return Machine(compile_program(fig61_program()), seed=1, mode="logged").run()


class TestContentDigest:
    def test_roundtrip_carries_and_verifies_digest(self, record):
        text = record_to_json(record)
        assert json.loads(text)["digest"]
        reloaded = record_from_json(text)
        assert record_to_json(reloaded) == text

    def test_wrong_digest_is_typed(self, record):
        body = json.loads(record_to_json(record))
        body["digest"] = "0" * 64
        with pytest.raises(RecordDigestError) as excinfo:
            record_from_json(json.dumps(body))
        assert excinfo.value.field == "digest"
        assert isinstance(excinfo.value, PersistError)

    def test_tampered_payload_fails_digest(self, record):
        body = json.loads(record_to_json(record))
        body["seed"] = body["seed"] + 1
        with pytest.raises(RecordDigestError):
            record_from_json(json.dumps(body))

    def test_digestless_document_still_loads(self, record):
        """Back-compat: records persisted before digests verify nothing."""
        body = json.loads(record_to_json(record))
        del body["digest"]
        reloaded = record_from_json(json.dumps(body))
        assert reloaded.seed == record.seed


class TestInjectedCorruption:
    @pytest.mark.parametrize(
        "point,expected",
        [
            ("persist.truncate", RecordCorruptError),
            ("persist.bitflip", (RecordDigestError, RecordCorruptError)),
        ],
    )
    def test_corrupted_save_fails_typed_and_quarantines(
        self, record, tmp_path, point, expected
    ):
        path = str(tmp_path / "run.ppd.json")
        with faults.inject(f"{point}:n=1") as plan:
            save_record(record, path)
        assert plan.total_fired() == 1
        with pytest.raises(PersistError) as excinfo:
            load_record(path)
        error = excinfo.value
        assert isinstance(error, expected)
        assert error.quarantined == path + ".quarantined"
        assert os.path.exists(error.quarantined)
        assert not os.path.exists(path)

    def test_quarantine_can_be_disabled(self, record, tmp_path):
        path = str(tmp_path / "run.ppd.json")
        with faults.inject("persist.truncate:n=1"):
            save_record(record, path)
        with pytest.raises(PersistError) as excinfo:
            load_record(path, quarantine=False)
        assert excinfo.value.quarantined is None
        assert os.path.exists(path)

    def test_clean_save_is_atomic_and_loads(self, record, tmp_path):
        path = str(tmp_path / "run.ppd.json")
        save_record(record, path)
        assert not os.path.exists(path + ".tmp")
        assert record_to_json(load_record(path)) == record_to_json(record)

    def test_missing_file_is_io_error(self, tmp_path):
        with pytest.raises(RecordIOError):
            load_record(str(tmp_path / "nope.ppd.json"))


def all_intervals(record):
    return [
        (pid, interval_id)
        for pid, index in sorted(interval_indexes(record).items())
        for interval_id in sorted(index)
    ]


def surfaces(results):
    return [
        [event.to_json() for event in result.events] for result in results
    ]


class TestSpillFaults:
    def test_spill_io_errors_absorbed(self, record, tmp_path):
        requests = all_intervals(record)
        with ReplayPool(record, jobs=1, cache=ReplayCache()) as pool:
            expected = surfaces(pool.replay_batch(requests))
        cache = ReplayCache(max_events=1, spill_dir=str(tmp_path / "spill"))
        with faults.inject("cache.spill_io:n=100") as plan:
            with ReplayPool(record, jobs=1, cache=cache) as pool:
                results = pool.replay_batch(requests)
        assert surfaces(results) == expected
        assert plan.total_fired() > 0
        assert cache.stats.spill_errors == plan.total_fired()
        assert cache.stats.spills == 0

    def test_corrupt_spill_file_dropped_and_remissed(self, record, tmp_path):
        cache = ReplayCache(max_events=1, spill_dir=str(tmp_path / "spill"))
        requests = all_intervals(record)
        with ReplayPool(record, jobs=1, cache=cache) as pool:
            pool.replay_batch(requests)
        assert cache.stats.spills > 0
        spilled = sorted(os.listdir(cache.spill_dir))
        assert spilled
        victim = os.path.join(cache.spill_dir, spilled[0])
        with open(victim, "r+b") as handle:
            handle.seek(20)
            byte = handle.read(1)
            handle.seek(20)
            handle.write(bytes([byte[0] ^ 0xFF]))
        cache.clear()
        with ReplayPool(record, jobs=1, cache=cache) as pool:
            results = pool.replay_batch(requests)
        # The corrupt spill was detected, deleted, and silently re-missed
        # into a fresh (correct) replay; a later eviction may re-spill a
        # clean frame to the same path.
        assert cache.stats.spill_bad >= 1
        with ReplayPool(record, jobs=1, cache=ReplayCache()) as pool:
            assert surfaces(results) == surfaces(pool.replay_batch(requests))

    def test_truncated_spill_frame_dropped(self, record, tmp_path):
        cache = ReplayCache(max_events=1, spill_dir=str(tmp_path / "spill"))
        requests = all_intervals(record)
        with ReplayPool(record, jobs=1, cache=cache) as pool:
            pool.replay_batch(requests)
        spilled = sorted(os.listdir(cache.spill_dir))
        victim = os.path.join(cache.spill_dir, spilled[0])
        with open(victim, "rb") as handle:
            frame = handle.read()
        with open(victim, "wb") as handle:
            handle.write(frame[: len(frame) // 2])
        cache.clear()
        with ReplayPool(record, jobs=1, cache=cache) as pool:
            pool.replay_batch(requests)
        assert cache.stats.spill_bad >= 1
