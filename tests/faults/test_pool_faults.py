"""Self-healing replay pool: crashed and hung workers are detected,
respawned within budget, and degraded to inline serial replay past it —
with byte-identical results every time (replay is deterministic)."""

import pytest

from repro import Machine, compile_program, faults, obs
from repro.core.emulation import interval_indexes
from repro.obs.report import deterministic_counters
from repro.perf import ReplayCache, ReplayPool, leaked_segments
from repro.workloads import fig61_program


@pytest.fixture(scope="module")
def record():
    return Machine(compile_program(fig61_program()), seed=1, mode="logged").run()


def all_intervals(record):
    return [
        (pid, interval_id)
        for pid, index in sorted(interval_indexes(record).items())
        for interval_id in sorted(index)
    ]


def surfaces(results):
    return [
        (
            [event.to_json() for event in result.events],
            sorted(result.trace_of_sync.items()),
            sorted(result.final_shared.items()),
        )
        for result in results
    ]


@pytest.fixture(scope="module")
def expected(record):
    with ReplayPool(record, jobs=1, cache=ReplayCache()) as pool:
        return surfaces(pool.replay_batch(all_intervals(record)))


def make_pool(record, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("cache", ReplayCache())
    kwargs.setdefault("retry_backoff_s", 0.01)
    return ReplayPool(record, **kwargs)


class TestWorkerCrash:
    def test_crash_respawns_and_results_identical(self, record, expected):
        with faults.inject("pool.crash:n=1") as plan:
            with make_pool(record) as pool:
                results = pool.replay_batch(all_intervals(record))
                assert plan.total_fired() == 1
                assert pool.respawns == 1
                assert pool.fallbacks == 0
        assert surfaces(results) == expected

    def test_crash_counts_recovery_when_obs_enabled(self, record):
        with obs.capture() as registry:
            with faults.inject("pool.crash:n=1"):
                with make_pool(record) as pool:
                    pool.replay_batch(all_intervals(record))
            counters = deterministic_counters(registry)
        assert counters.get("faults.injected{point=pool.crash}") == 1
        assert counters.get("recovery.pool.respawns") == 1
        assert counters.get("recovery.actions") >= 1


class TestWorkerHang:
    def test_watchdog_detects_hang_and_results_identical(self, record, expected):
        with faults.inject("pool.hang:n=1,s=2.0") as plan:
            with make_pool(record, worker_timeout_s=0.2) as pool:
                results = pool.replay_batch(all_intervals(record))
                assert plan.total_fired() == 1
                assert pool.respawns == 1
        assert surfaces(results) == expected


class TestBoundedRespawn:
    def test_exhausted_budget_falls_back_inline(self, record, expected):
        """Workers that crash on every attempt: the pool retries
        ``max_respawns`` times, then degrades to inline serial replay —
        cause-labelled, never silent, still byte-identical."""
        with obs.capture() as registry:
            with faults.inject("pool.crash:n=100"):
                with make_pool(record, max_respawns=1) as pool:
                    results = pool.replay_batch(all_intervals(record))
                    assert pool.respawns == 1
                    assert pool.fallbacks == 1
                    assert pool.fallback_causes == {"worker-crash": 1}
                    assert pool.last_fallback_cause == "worker-crash"
            counters = deterministic_counters(registry)
        assert surfaces(results) == expected
        assert counters.get("perf.pool.fallbacks") == 1
        assert counters.get("perf.pool.fallbacks{cause=worker-crash}") == 1

    def test_broken_pool_stays_inline_for_later_batches(self, record, expected):
        with make_pool(record, max_respawns=0, cache=None) as pool:
            with faults.inject("pool.crash:n=100"):
                pool.replay_batch(all_intervals(record))
                assert pool.fallbacks == 1
            # Injection is over, but the pool already exhausted its
            # budget: later batches go straight to inline replay.
            results = pool.replay_batch(all_intervals(record))
            assert surfaces(results) == expected
            assert pool.fallback_causes.get("pool-start-failed") == 1
            assert pool.describe()["parallel"] is False

    def test_describe_surfaces_fallback_causes(self, record):
        with faults.inject("pool.crash:n=100"):
            with make_pool(record, max_respawns=0) as pool:
                pool.replay_batch(all_intervals(record))
                info = pool.describe()
        assert info["fallback_causes"] == {"worker-crash": 1}
        assert info["last_fallback_cause"] == "worker-crash"
        assert info["respawns"] == 0


class TestNoFaultPath:
    def test_clean_run_has_no_respawns_or_fallbacks(self, record, expected):
        with make_pool(record) as pool:
            results = pool.replay_batch(all_intervals(record))
            assert pool.respawns == 0
            assert pool.fallbacks == 0
        assert surfaces(results) == expected


class TestShmUnderFaults:
    """The shared-memory record segment across worker-killing faults: a
    respawned pool re-attaches the *same* segment (the record is pickled
    exactly once per pool lifetime), and every exit path — clean close,
    budget exhaustion, mid-fault teardown — unlinks it."""

    def test_crash_respawn_reuses_segment(self, record, expected):
        before = leaked_segments()
        with faults.inject("pool.crash:n=1"):
            with make_pool(record) as pool:
                first_batch = pool.replay_batch(all_intervals(record))
                assert pool.respawns == 1
                segment = pool._segment
                assert segment is not None and not segment.closed
                assert pool.describe()["transport"] == "shm"
                # The record crossed to workers zero times by value: only
                # the ~30-byte segment name shipped, once per worker.
                assert pool.bytes_shipped < 1024
                results = pool.replay_batch(all_intervals(record))
                assert pool._segment is segment  # respawn re-attached, not re-pickled
        assert surfaces(first_batch) == expected
        assert surfaces(results) == expected
        assert leaked_segments() == before

    def test_hang_respawn_reuses_segment(self, record, expected):
        before = leaked_segments()
        with faults.inject("pool.hang:n=1,s=2.0"):
            with make_pool(record, worker_timeout_s=0.2) as pool:
                results = pool.replay_batch(all_intervals(record))
                assert pool.respawns == 1
                assert pool._segment is not None
                assert pool.describe()["transport"] == "shm"
        assert surfaces(results) == expected
        assert leaked_segments() == before

    def test_budget_exhaustion_releases_segment(self, record, expected):
        """Degrading to inline replay must not strand the segment until
        close(): a permanently-broken pool has no workers to serve."""
        before = leaked_segments()
        with faults.inject("pool.crash:n=100"):
            with make_pool(record, max_respawns=1) as pool:
                results = pool.replay_batch(all_intervals(record))
                assert pool.fallbacks == 1
                assert leaked_segments() == before  # released on breakage
        assert surfaces(results) == expected
        assert leaked_segments() == before

    def test_vm_engine_identical_under_crash(self, record, expected):
        with faults.inject("pool.crash:n=1"):
            with make_pool(record, engine="vm") as pool:
                results = pool.replay_batch(all_intervals(record))
                assert pool.respawns == 1
        assert surfaces(results) == expected
        assert leaked_segments() == []

    def test_no_dev_shm_entries_after_every_fault_class(self, record):
        """The chaos-suite invariant, in miniature: run each worker-
        killing fault class back to back and end with /dev/shm clean."""
        for spec, kwargs in [
            ("pool.crash:n=1", {}),
            ("pool.hang:n=1,s=2.0", {"worker_timeout_s": 0.2}),
            ("pool.crash:n=100", {"max_respawns": 1}),
        ]:
            with faults.inject(spec):
                with make_pool(record, **kwargs) as pool:
                    pool.replay_batch(all_intervals(record))
            assert leaked_segments() == [], f"leak after {spec}"
