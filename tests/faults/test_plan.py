"""The fault plan itself: spec grammar, deterministic firing, activation
paths (context manager, env var), and the zero-leak guarantee."""

import pytest

from repro import Machine, compile_program, faults, obs
from repro.faults import FaultPlan, FaultPoint, FaultSpecError, POINTS, state
from repro.obs.report import deterministic_counters
from repro.workloads import fig41_program


class TestSpecParsing:
    def test_bare_point_defaults(self):
        plan = FaultPlan.parse("pool.crash")
        point = plan.points["pool.crash"]
        assert (point.times, point.after, point.p) == (1, 0, 1.0)

    def test_options(self):
        plan = FaultPlan.parse("socket.stall:n=3,after=2,p=0.5,s=0.25")
        point = plan.points["socket.stall"]
        assert point.times == 3
        assert point.after == 2
        assert point.p == 0.5
        assert point.delay_s == 0.25

    def test_multiple_clauses_and_seed(self):
        plan = FaultPlan.parse("seed=7;pool.crash;cache.spill_io:n=2")
        assert plan.seed == 7
        assert set(plan.points) == {"pool.crash", "cache.spill_io"}

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = FaultPlan.parse(" pool.crash ; ; socket.drop : n=2 ")
        assert set(plan.points) == {"pool.crash", "socket.drop"}

    @pytest.mark.parametrize(
        "spec",
        [
            "no.such.point",
            "pool.crash:n=abc",
            "pool.crash:p=maybe",
            "pool.crash:bogus=1",
            "pool.crash:n",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_constructor_rejects_unknown_point(self):
        with pytest.raises(FaultSpecError):
            FaultPlan([FaultPoint(name="nope")])

    def test_every_catalog_point_parses(self):
        plan = FaultPlan.parse(";".join(POINTS))
        assert set(plan.points) == set(POINTS)


class TestFiring:
    def test_fires_at_most_n_times(self):
        plan = FaultPlan.parse("sched.slow:n=2")
        fired = [plan.should_fire("sched.slow") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.total_fired() == 2

    def test_after_skips_eligible_hits(self):
        plan = FaultPlan.parse("sched.slow:after=2")
        fired = [plan.should_fire("sched.slow") is not None for _ in range(4)]
        assert fired == [False, False, True, False]

    def test_unlisted_point_never_fires(self):
        plan = FaultPlan.parse("pool.crash")
        assert plan.should_fire("socket.drop") is None

    def test_probability_is_seed_deterministic(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan.parse("sched.slow:n=100,p=0.5", seed=42)
            decisions.append(
                [plan.should_fire("sched.slow") is not None for _ in range(50)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_describe_reports_counters(self):
        plan = FaultPlan.parse("sched.slow:n=1")
        plan.should_fire("sched.slow")
        plan.should_fire("sched.slow")
        info = plan.describe()
        assert info["fired"] == 1
        assert info["points"]["sched.slow"]["hits"] == 2


class TestActivation:
    def test_inject_restores_inactive_state(self):
        assert not faults.is_active()
        with faults.inject("pool.crash") as plan:
            assert faults.is_active()
            assert state.current_plan() is plan
        assert not faults.is_active()
        assert state.current_plan() is None

    def test_inject_restores_previous_plan(self):
        outer = faults.install(FaultPlan.parse("pool.crash"))
        try:
            with faults.inject("socket.drop"):
                assert state.current_plan() is not outer
            assert state.current_plan() is outer
            assert faults.is_active()
        finally:
            faults.uninstall()

    def test_inject_accepts_plan_instance(self):
        plan = FaultPlan.parse("sched.slow")
        with faults.inject(plan) as active:
            assert active is plan

    def test_fire_inactive_returns_none(self):
        assert state.fire("pool.crash") is None

    def test_activate_from_env(self):
        plan = faults.activate_from_env(
            {"PPD_FAULTS": "socket.drop:n=2", "PPD_FAULTS_SEED": "9"}
        )
        try:
            assert plan is not None
            assert plan.seed == 9
            assert plan.points["socket.drop"].times == 2
            assert faults.is_active()
        finally:
            faults.uninstall()

    def test_activate_from_env_unset_is_noop(self):
        assert faults.activate_from_env({}) is None
        assert not faults.is_active()

    def test_activate_from_env_bad_spec_raises(self):
        with pytest.raises(FaultSpecError):
            faults.activate_from_env({"PPD_FAULTS": "no.such.point"})


class TestZeroLeak:
    def test_fault_free_run_counts_nothing(self):
        """All faults.*/recovery.* counters stay zero with injection off."""
        with obs.capture() as registry:
            Machine(compile_program(fig41_program()), seed=0, mode="logged").run()
            counters = deterministic_counters(registry)
        leaked = {
            name: value
            for name, value in counters.items()
            if name.startswith(("faults.", "recovery.")) and value
        }
        assert leaked == {}

    def test_fired_fault_counts_when_obs_enabled(self):
        with obs.capture() as registry:
            with faults.inject("sched.slow:n=2,s=0.0"):
                Machine(
                    compile_program(fig41_program()), seed=0, mode="logged"
                ).run()
            counters = deterministic_counters(registry)
        assert counters.get("faults.injected") == 2
        assert counters.get("faults.injected{point=sched.slow}") == 2
