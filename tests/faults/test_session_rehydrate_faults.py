"""Session rehydration under injected failure: a session must stay
usable (after retry) or fail with a structured error — never end up
half-rehydrated, even under concurrent access."""

import threading

import pytest

from repro import faults
from repro.runtime.persist import PersistError
from repro.server import DebugClient, DebugService, ServerError, SessionManager
from repro.workloads import bank_safe, buggy_average

AVG_INPUTS = [10, 20, 30, 40, 50]


@pytest.fixture()
def mgr(tmp_path):
    manager = SessionManager(max_live=1, spool_dir=str(tmp_path / "spool"))
    yield manager
    manager.close_all()


def open_evicted_average(mgr):
    """An opened-then-LRU-evicted session, plus its expected output."""
    sid, _ = mgr.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)
    expected = mgr.execute(sid, "where")
    mgr.open_program(bank_safe(2, 2), seed=0)  # max_live=1: evicts sid
    assert not mgr.is_live(sid)
    return sid, expected


class TestAtomicRehydration:
    def test_injected_failure_is_typed_and_session_stays_intact(self, mgr):
        sid, expected = open_evicted_average(mgr)
        with faults.inject("session.rehydrate:n=1") as plan:
            with pytest.raises(PersistError):
                mgr.execute(sid, "where")
            assert plan.total_fired() == 1
            # Not half-rehydrated: still evicted, rehydration not counted,
            # journal intact — and the very next attempt succeeds.
            assert not mgr.is_live(sid)
            entry = mgr._entries[sid]
            assert entry.rehydrations == 0
            assert mgr.execute(sid, "where") == expected
            assert entry.rehydrations == 1

    def test_journal_replays_after_failed_rehydration(self, mgr):
        sid, _ = mgr.open_program(buggy_average(5), seed=0, inputs=AVG_INPUTS)
        expanded = mgr.execute(sid, "expandable")
        mgr.open_program(bank_safe(2, 2), seed=0)
        with faults.inject("session.rehydrate:n=1"):
            with pytest.raises(PersistError):
                mgr.execute(sid, "where")
            assert mgr.execute(sid, "expandable") == expanded

    def test_concurrent_rehydration_under_injection(self, mgr):
        """N threads race to rehydrate while one injected failure is
        pending: exactly one sees the typed error, everyone else gets the
        byte-identical answer, and the session ends up live and sane."""
        sid, expected = open_evicted_average(mgr)
        outcomes: list[object] = []
        lock = threading.Lock()

        def worker() -> None:
            try:
                result = mgr.execute(sid, "where")
            except PersistError as error:
                result = error
            with lock:
                outcomes.append(result)

        with faults.inject("session.rehydrate:n=1"):
            threads = [threading.Thread(target=worker) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        errors = [o for o in outcomes if isinstance(o, PersistError)]
        answers = [o for o in outcomes if not isinstance(o, PersistError)]
        assert len(errors) == 1
        assert answers == [expected] * 5
        assert mgr.is_live(sid)
        assert mgr.execute(sid, "where") == expected


class TestThroughService:
    def test_rehydrate_failure_surfaces_as_structured_error(self, tmp_path):
        service = DebugService(
            port=0,
            max_sessions=1,
            request_timeout_s=30.0,
            spool_dir=str(tmp_path / "spool"),
        )
        service.start()
        try:
            client = DebugClient(service.host, service.port, timeout=10.0)
            with client:
                first = client.open_program(
                    buggy_average(5), seed=0, inputs=AVG_INPUTS
                )
                expected = first.execute("where")
                client.open_program(bank_safe(2, 2), seed=0)  # evicts first
                with faults.inject("session.rehydrate:n=1"):
                    with pytest.raises(ServerError) as excinfo:
                        first.execute("where")
                    assert excinfo.value.code == "persist-error"
                    # Structured error, wire still healthy, retry succeeds.
                    assert first.execute("where") == expected
        finally:
            service.shutdown()
