"""Safety net: no test may leak an active fault plan into the next."""

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def no_fault_leak():
    yield
    faults.uninstall()
