"""The MPI-style workload family: generation, execution, and fault seeding.

Every family must compile and run to completion (no failure, no deadlock)
clean and under every supported fault — a seeded fault is a *behavioural*
deviation, never a hang — and the per-rank behaviour must be a pure
function of the program text (identical output for any scheduler seed is
covered by the vm-parity gate; here we check the family-level contract).
"""

import pytest

from repro import Machine, compile_program
from repro.workloads.mpi import (
    MPI_FAMILIES,
    broadcast_tree,
    master_worker,
    mpi_workload,
    ring_allreduce,
    scatter_gather,
)


def run(source, seed=0, engine="interp"):
    return Machine(compile_program(source), seed=seed, engine=engine).run()


def text(record) -> str:
    return " ".join(line for _, line in record.output)


def assert_completed(record, context=""):
    assert record.failure is None, (context, record.failure)
    assert record.deadlock is None, (context, record.deadlock)


class TestRegistry:
    def test_all_four_families_registered(self):
        assert set(MPI_FAMILIES) == {
            "scatter_gather",
            "ring_allreduce",
            "broadcast_tree",
            "master_worker",
        }

    def test_generators_expose_their_faults(self):
        assert scatter_gather.FAULTS == {"wrong_op", "skew"}
        assert ring_allreduce.FAULTS == {"wrong_op"}
        assert broadcast_tree.FAULTS == {"extra_ack", "wrong_op"}
        assert master_worker.FAULTS == {"drop_result", "skew"}

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown MPI workload family"):
            mpi_workload("alltoall")

    def test_deviant_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            scatter_gather(4, deviant=4)
        with pytest.raises(ValueError, match="out of range"):
            ring_allreduce(4, deviant=-1)

    def test_unsupported_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            ring_allreduce(4, deviant=1, fault="drop_result")

    def test_dispatcher_defaults_to_first_fault(self):
        # fault=None with a deviant picks the lexically first supported kind.
        assert mpi_workload("master_worker", 4, deviant=1) == master_worker(
            4, deviant=1, fault="drop_result"
        )


class TestCleanRuns:
    @pytest.mark.parametrize("family", sorted(MPI_FAMILIES))
    def test_family_completes(self, family):
        record = run(mpi_workload(family, 6))
        assert_completed(record, family)
        assert record.output, family
        # one proc per rank plus main
        assert len(record.process_names) == 7

    def test_scatter_gather_total(self):
        # acc = 1 + sum of four chunk values (r+k) % 5 + 4 per rank.
        ranks, items = 5, 4
        expected = sum(
            1 + sum((r + k) % 5 + 4 for k in range(items)) for r in range(ranks)
        )
        record = run(scatter_gather(ranks, items))
        assert f"total = {expected}" in text(record)

    def test_ring_allreduce_is_an_allreduce(self):
        # Every rank ends with the same full sum of contributions 2..ranks+1.
        ranks = 5
        full = sum(r + 2 for r in range(ranks))
        record = run(ring_allreduce(ranks))
        assert f"total = {ranks * full}" in text(record)

    def test_broadcast_reaches_every_rank(self):
        # All ranks ack checksum(payload): popcount(21) = 3, 8 ranks -> 24.
        record = run(broadcast_tree(8, payload=21))
        assert "checks = 24" in text(record)

    def test_master_worker_progress_counts_tasks(self):
        record = run(master_worker(4, 3))
        assert "progress = 12" in text(record)


class TestFaultedRuns:
    @pytest.mark.parametrize(
        "family,fault",
        [(f, fault) for f in sorted(MPI_FAMILIES) for fault in sorted(MPI_FAMILIES[f][1])],
    )
    def test_every_fault_completes_without_deadlock(self, family, fault):
        record = run(mpi_workload(family, 6, deviant=2, fault=fault))
        assert_completed(record, (family, fault))

    def test_wrong_op_changes_the_answer(self):
        clean = run(scatter_gather(5)).output
        faulty = run(scatter_gather(5, deviant=2, fault="wrong_op")).output
        assert clean != faulty

    def test_drop_result_loses_exactly_one_result(self):
        clean = text(run(master_worker(4, 3)))
        faulty = text(run(master_worker(4, 3, deviant=1, fault="drop_result")))
        assert clean != faulty
        # the sentinel protocol still drains: progress is unaffected
        assert "progress = 12" in faulty

    def test_extra_ack_still_gathers(self):
        # main still collects exactly `ranks` acks; the extra one stays queued.
        record = run(broadcast_tree(6, deviant=3, fault="extra_ack"))
        assert_completed(record)


class TestScale:
    @pytest.mark.parametrize("family", sorted(MPI_FAMILIES))
    def test_tens_of_processes(self, family):
        record = run(mpi_workload(family, 24))
        assert_completed(record, family)
        assert len(record.process_names) == 25
        # real sync traffic for the graph layer, not a toy trace
        assert len(record.history.nodes) > 100

    def test_output_is_seed_independent(self):
        source = ring_allreduce(8)
        outputs = {tuple(run(source, seed=seed).output) for seed in (0, 7, 123)}
        assert len(outputs) == 1
