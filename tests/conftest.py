"""Shared fixtures: compiled workloads and recorded executions."""

from __future__ import annotations

import pytest

from repro import compile_program, Machine
from repro.workloads import (
    bank_race,
    bank_safe,
    buggy_average,
    compute_heavy,
    fig41_program,
    fig53_program,
    fig61_program,
    nested_calls,
)


@pytest.fixture(scope="session")
def fig41_compiled():
    return compile_program(fig41_program())


@pytest.fixture(scope="session")
def fig53_compiled():
    return compile_program(fig53_program())


@pytest.fixture(scope="session")
def fig61_compiled():
    return compile_program(fig61_program())


@pytest.fixture(scope="session")
def nested_compiled():
    return compile_program(nested_calls())


@pytest.fixture(scope="session")
def bank_race_compiled():
    return compile_program(bank_race(2, 3))


@pytest.fixture(scope="session")
def bank_safe_compiled():
    return compile_program(bank_safe(2, 3))


@pytest.fixture(scope="session")
def buggy_average_compiled():
    return compile_program(buggy_average(5))


@pytest.fixture(scope="session")
def compute_heavy_compiled():
    return compile_program(compute_heavy(5, 6))


@pytest.fixture()
def buggy_average_record(buggy_average_compiled):
    machine = Machine(
        buggy_average_compiled, seed=0, mode="logged", inputs=[10, 20, 30, 40, 50]
    )
    return machine.run()


@pytest.fixture()
def fig61_record(fig61_compiled):
    return Machine(fig61_compiled, seed=1, mode="logged").run()


@pytest.fixture()
def bank_race_record(bank_race_compiled):
    return Machine(bank_race_compiled, seed=3, mode="logged").run()


def run_logged(source: str, seed: int = 0, inputs=None, policy=None):
    """Helper for tests that need a one-off logged run."""
    compiled = compile_program(source, policy=policy)
    return Machine(compiled, seed=seed, mode="logged", inputs=inputs).run()
