"""Integration tests: hooks wired through both debugger phases.

Two contracts matter beyond unit behaviour:

* the counter *names* are stable — BENCH_obs.json diffs and the README
  catalogue depend on them;
* with obs disabled (the default), instrumentation is invisible: no
  metrics accumulate and the execution-phase LogFiles are byte-identical
  to an uninstrumented run.
"""

import pytest

from repro import Machine, PPDSession, compile_program, obs
from repro.workloads import bank_race, buggy_average

#: The counter catalogue: every base name the hooks may emit.  Renaming
#: one is a breaking change for BENCH_obs.json baselines — update the
#: README catalogue and re-baseline deliberately.
STABLE_COUNTER_NAMES = {
    "exec.runs",
    "exec.steps",
    "exec.shared.reads",
    "exec.shared.writes",
    "exec.sync_events",
    "sched.preemptions",
    "sched.context_switches",
    "log.entries",
    "log.bytes",
    "debug.replays",
    "debug.replays.cache_hits",
    "debug.replayed_events",
    "debug.replayed_steps",
    "debug.subgraph_expansions",
    "debug.flowback.queries",
    "debug.flowback.nodes",
    "debug.flowback.seconds",
    "debug.races.scans",
    "debug.races.pairs_examined",
    "debug.races.pairs_pruned",
    "debug.races.order_checks",
    "debug.races.found",
    "analysis.lint.diagnostics",
    "analysis.lint.errors",
    "analysis.effects.programs",
    "analysis.effects.local",
    "analysis.effects.shared",
    "analysis.effects.sync",
    "vm.fastpath.elided",
    "vm.fastpath.fused_ops",
    "vm.fastpath.pre_local",
    "perf.cache.hits",
    "perf.cache.misses",
    "perf.cache.evictions",
    "perf.cache.spills",
    "perf.cache.spill_hits",
    "perf.cache.entries",
    "perf.cache.events",
    "perf.pool.batches",
    "perf.pool.submitted",
    "perf.pool.executed",
    "perf.pool.chunks",
    "perf.pool.bytes_shipped",
    "perf.pool.fallbacks",
    "perf.pool.seconds",
    "perf.shm.created",
    "perf.shm.attached",
    "perf.shm.unlinked",
    "perf.shm.bytes",
}


@pytest.fixture(scope="module")
def average_compiled():
    return compile_program(buggy_average(5))


def _run_average(compiled):
    return Machine(
        compiled, seed=0, mode="logged", inputs=[10, 20, 30, 40, 50]
    ).run()


def _debug_session(record):
    session = PPDSession(record)
    session.start()
    session.why_value("average")
    return session


class TestEnabledPath:
    def test_counter_names_are_stable(self, average_compiled):
        with obs.capture() as registry:
            record = _run_average(average_compiled)
            _debug_session(record)
            racy = Machine(
                compile_program(bank_race(2, 2)), seed=3, mode="logged"
            ).run()
            racy_session = PPDSession(racy)
            racy_session.start()
            racy_session.races()
        base_names = {name.partition("{")[0] for name in registry.snapshot()}
        # Timer stats expand with suffixes; strip them back to base names.
        base_names = {
            name.rsplit(".", 1)[0]
            if name.endswith((".count", ".total_s", ".mean_s", ".max_s", ".min_s"))
            else name
            for name in base_names
        }
        assert base_names <= STABLE_COUNTER_NAMES
        # The canonical smoke workload exercises every hook family.
        for required in (
            "exec.runs",
            "exec.steps",
            "log.entries",
            "log.bytes",
            "sched.preemptions",
            "debug.replays",
            "debug.flowback.queries",
            "debug.races.scans",
        ):
            assert required in base_names, f"missing {required}"

    def test_counters_match_record_totals(self, average_compiled):
        with obs.capture() as registry:
            record = _run_average(average_compiled)
        assert registry.value("exec.runs") == 1
        assert registry.value("exec.steps") == record.total_steps
        assert registry.value("log.entries") == record.log_entry_count()
        assert registry.value("sched.preemptions") == record.preemptions
        assert (
            registry.value("sched.context_switches") == record.context_switches
        )
        for pid, log in record.logs.items():
            per_pid = sum(
                m.value
                for m in registry.find("log.entries")
                if ("pid", str(pid)) in m.labels
            )
            assert per_pid == len(log)

    def test_per_process_log_bytes_sum_to_total(self, average_compiled):
        with obs.capture() as registry:
            _run_average(average_compiled)
        total = registry.value("log.bytes")
        per_pid = sum(
            m.value for m in registry.find("log.bytes") if m.labels
        )
        assert total == per_pid > 0

    def test_trace_records_run_event(self, average_compiled):
        with obs.capture():
            _run_average(average_compiled)
            runs = obs.tracer().by_name("exec.run")
        assert len(runs) == 1
        assert runs[0].attrs["steps"] > 0

    def test_replay_cache_hit_counter(self, average_compiled):
        with obs.capture() as registry:
            record = _run_average(average_compiled)
            session = PPDSession(record)
            session.start()
            first = session.expand_interval(0, 1)
            again = session.expand_interval(0, 1)
        assert first is again
        assert registry.value("debug.replays.cache_hits") >= 1


class TestDisabledPath:
    def test_disabled_is_the_default(self):
        assert not obs.is_enabled()

    def test_no_metrics_accumulate_when_disabled(self, average_compiled):
        obs.reset()
        record = _run_average(average_compiled)
        _debug_session(record)
        assert len(obs.registry()) == 0
        assert len(obs.tracer()) == 0

    def test_log_contents_identical_with_and_without_obs(self, average_compiled):
        """Observing must never perturb the §3.2 log (the E1 quantity)."""
        baseline = _run_average(average_compiled)
        with obs.capture():
            observed = _run_average(average_compiled)
        assert sorted(baseline.logs) == sorted(observed.logs)
        for pid in baseline.logs:
            assert (
                baseline.logs[pid].to_jsonl() == observed.logs[pid].to_jsonl()
            )

    def test_record_keeps_scheduler_totals_even_when_disabled(
        self, average_compiled
    ):
        record = _run_average(average_compiled)
        assert record.preemptions >= 0
        assert record.context_switches >= len(record.process_names) - 1
