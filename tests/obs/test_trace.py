"""Unit tests for the structured trace collector (repro.obs.trace)."""

import json

from repro.obs import TraceCollector


class TestEmission:
    def test_emit_records_event_with_attrs(self):
        tracer = TraceCollector()
        record = tracer.emit("exec.run", seed=3, steps=100)
        assert record.kind == "event"
        assert record.name == "exec.run"
        assert record.attrs == {"seed": 3, "steps": 100}
        assert len(tracer) == 1

    def test_span_times_block_and_captures_late_attrs(self):
        tracer = TraceCollector()
        with tracer.span("debug.replay", pid=0) as attrs:
            attrs["events"] = 42
        (record,) = tracer.records
        assert record.kind == "span"
        assert record.dur is not None and record.dur >= 0
        assert record.attrs == {"pid": 0, "events": 42}

    def test_span_recorded_even_when_block_raises(self):
        tracer = TraceCollector()
        try:
            with tracer.span("debug.replay"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer) == 1

    def test_timestamps_are_monotone(self):
        tracer = TraceCollector()
        for i in range(5):
            tracer.emit("tick", i=i)
        stamps = [r.ts for r in tracer]
        assert stamps == sorted(stamps)

    def test_capacity_drops_and_counts(self):
        tracer = TraceCollector(capacity=2)
        assert tracer.emit("a") is not None
        assert tracer.emit("b") is not None
        assert tracer.emit("c") is None
        with tracer.span("d"):
            pass
        assert len(tracer) == 2
        assert tracer.dropped == 2


class TestExport:
    def test_jsonl_lines_parse_and_round_trip_fields(self):
        tracer = TraceCollector()
        tracer.emit("exec.run", seed=0)
        with tracer.span("debug.replay", pid=1):
            pass
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        event, span = (json.loads(line) for line in lines)
        assert event["kind"] == "event"
        assert event["name"] == "exec.run"
        assert event["attrs"] == {"seed": 0}
        assert span["kind"] == "span"
        assert "dur" in span

    def test_write_jsonl(self, tmp_path):
        tracer = TraceCollector()
        tracer.emit("one")
        tracer.emit("two")
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        assert len(path.read_text().splitlines()) == 2

    def test_by_name_filters(self):
        tracer = TraceCollector()
        tracer.emit("a")
        tracer.emit("b")
        tracer.emit("a", n=2)
        assert [r.attrs for r in tracer.by_name("a")] == [{}, {"n": 2}]

    def test_reset_restarts_clock_and_clears(self):
        tracer = TraceCollector(capacity=1)
        tracer.emit("a")
        tracer.emit("b")  # dropped
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        assert tracer.emit("c") is not None
