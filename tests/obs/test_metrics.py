"""Unit tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.metrics import format_metric_name


class TestIdentity:
    def test_counter_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("exec.steps", pid=0)
        b = registry.counter("exec.steps", pid=0)
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("log.entries", pid=1, kind="Prelog")
        b = registry.counter("log.entries", kind="Prelog", pid=1)
        assert a is b

    def test_different_labels_are_different_metrics(self):
        registry = MetricsRegistry()
        registry.counter("exec.steps", pid=0).inc()
        registry.counter("exec.steps", pid=1).inc(5)
        registry.counter("exec.steps").inc(6)
        assert registry.value("exec.steps", pid=0) == 1
        assert registry.value("exec.steps", pid=1) == 5
        assert registry.value("exec.steps") == 6
        assert len(registry.find("exec.steps")) == 3

    def test_full_name_formatting(self):
        assert format_metric_name("x", ()) == "x"
        counter = Counter("log.entries", (("kind", "Prelog"), ("pid", "0")))
        assert counter.full_name == "log.entries{kind=Prelog,pid=0}"


class TestKinds:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(9)
        assert counter.value == 10

    def test_gauge_sets(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_timer_aggregates(self):
        timer = Timer("t")
        for seconds in (0.5, 0.1, 0.4):
            timer.observe(seconds)
        assert timer.count == 3
        assert timer.total == pytest.approx(1.0)
        assert timer.mean == pytest.approx(1.0 / 3)
        assert timer.max == pytest.approx(0.5)
        assert timer.min == pytest.approx(0.1)

    def test_empty_timer_stats_are_zero(self):
        stats = Timer("t").stats()
        assert stats["count"] == 0
        assert stats["mean_s"] == 0.0
        assert stats["min_s"] == 0.0


class TestRegistryViews:
    def test_get_never_creates(self):
        registry = MetricsRegistry()
        assert registry.get("missing") is None
        assert registry.value("missing") == 0
        assert len(registry) == 0

    def test_snapshot_is_sorted_and_flattens_timers(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.counter("a.count", pid=0).inc(1)
        registry.timer("z.latency").observe(0.25)
        snap = registry.snapshot()
        assert list(snap) == [
            "a.count{pid=0}",
            "b.count",
            "z.latency.count",
            "z.latency.total_s",
            "z.latency.mean_s",
            "z.latency.max_s",
            "z.latency.min_s",
        ]
        assert snap["z.latency.count"] == 1
        assert snap["z.latency.total_s"] == pytest.approx(0.25)

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.snapshot() == {}
