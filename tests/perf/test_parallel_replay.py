"""The parallel replay engine (repro.perf): pool, cache, rebasing.

The load-bearing property is §5.2 determinism carried one step further:
a base-0 replay rebased into a session's uid space must be *byte-
identical* to the replay the session would have produced natively.
Everything else — pooled fan-out, the shared cache, warm rehydration —
leans on that.
"""

import pickle

import pytest

from repro import Machine, PPDSession, compile_program, obs
from repro.core.emulation import EmulationPackage, interval_indexes
from repro.perf import ReplayCache, ReplayPool, record_digest, replay_cache
from repro.runtime.persist import record_from_json, record_to_json
from repro.workloads import fig41_program, fig61_program


@pytest.fixture(scope="module", params=["fig41", "fig61"])
def record(request):
    source = fig41_program() if request.param == "fig41" else fig61_program()
    return Machine(compile_program(source), seed=0, mode="logged").run()


def all_intervals(record):
    return [
        (pid, interval_id)
        for pid, index in sorted(interval_indexes(record).items())
        for interval_id in sorted(index)
    ]


def transcript(result):
    return [event.to_json() for event in result.events]


class TestRebasing:
    def test_rebased_base0_equals_native_replay(self, record):
        """replay(0).rebased(B) == replay(B), field for field."""
        package = EmulationPackage(record)
        for pid, interval_id in all_intervals(record):
            base0 = package.replay(pid, interval_id, uid_base=0)
            for base in (0, 137, 5001):
                native = package.replay(pid, interval_id, uid_base=base)
                rebased = base0.rebased(base)
                assert transcript(rebased) == transcript(native)
                assert rebased.trace_of_sync == native.trace_of_sync
                assert rebased.subgraph_intervals == native.subgraph_intervals
                assert [e.event_uid for e in rebased.externs] == [
                    e.event_uid for e in native.externs
                ]
                assert rebased.final_shared == native.final_shared
                assert rebased.final_locals == native.final_locals
                assert rebased.output == native.output

    def test_rebased_copies_do_not_alias(self, record):
        package = EmulationPackage(record)
        pid, interval_id = all_intervals(record)[0]
        base0 = package.replay(pid, interval_id, uid_base=0)
        rebased = base0.rebased(0)
        assert rebased.events is not base0.events
        if rebased.events:
            assert rebased.events[0] is not base0.events[0]


class TestReplayPool:
    def test_pooled_byte_identical_to_serial_every_interval(self, record):
        """The tentpole property: pooled replay == serial replay, for every
        interval of the Fig 4.1 / Fig 6.1 workloads."""
        package = EmulationPackage(record)
        requests = all_intervals(record)
        with ReplayPool(record, jobs=2) as pool:
            pooled = pool.replay_batch(requests)
        for (pid, interval_id), result in zip(requests, pooled):
            serial = package.replay(pid, interval_id, uid_base=0)
            assert transcript(result) == transcript(serial)
            assert result.trace_of_sync == serial.trace_of_sync
            assert result.final_shared == serial.final_shared

    def test_results_merge_in_request_order(self, record):
        requests = list(reversed(all_intervals(record)))
        with ReplayPool(record, jobs=2) as pool:
            results = pool.replay_batch(requests)
        assert [(r.pid, r.interval_id) for r in results] == requests

    def test_duplicate_requests_execute_once(self, record):
        pid, interval_id = all_intervals(record)[0]
        with ReplayPool(record, jobs=1) as pool:
            results = pool.replay_batch([(pid, interval_id)] * 3)
            assert pool.executed == 1
        assert results[0] is results[1] is results[2]

    def test_jobs_one_stays_inline(self, record):
        with ReplayPool(record, jobs=1) as pool:
            pool.replay_batch(all_intervals(record))
            assert pool.describe()["parallel"] is False

    def test_pool_feeds_attached_cache(self, record):
        cache = ReplayCache()
        requests = all_intervals(record)
        with ReplayPool(record, jobs=2, cache=cache) as pool:
            pool.replay_batch(requests)
            assert cache.stats.misses == len(requests)
            pool.replay_batch(requests)
            assert cache.stats.hits == len(requests)
            assert pool.executed == len(requests)  # second batch all-warm

    def test_record_pickles(self, record):
        blob = pickle.dumps(record)
        assert pickle.loads(blob).total_steps == record.total_steps


class TestReplayCache:
    def test_miss_then_hit(self, record):
        cache = ReplayCache()
        package = EmulationPackage(record)
        pid, interval_id = all_intervals(record)[0]
        assert cache.get(record, pid, interval_id) is None
        result = package.replay(pid, interval_id, uid_base=0)
        cache.put(record, pid, interval_id, result)
        assert cache.get(record, pid, interval_id) is result
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_digest_survives_persist_round_trip(self, record):
        reloaded = record_from_json(record_to_json(record))
        assert record_digest(reloaded) == record_digest(record)

    def test_round_tripped_record_hits_same_entries(self, record):
        """The property rehydration relies on: a reloaded record (different
        object, same content) addresses the same cache entries."""
        cache = ReplayCache()
        package = EmulationPackage(record)
        pid, interval_id = all_intervals(record)[0]
        cache.put(record, pid, interval_id, package.replay(pid, interval_id))
        reloaded = record_from_json(record_to_json(record))
        assert cache.get(reloaded, pid, interval_id) is not None

    def test_lru_eviction_by_event_weight(self, record):
        package = EmulationPackage(record)
        requests = all_intervals(record)
        results = [package.replay(pid, iid, uid_base=0) for pid, iid in requests]
        # Budget for the largest result only: each insert evicts the rest.
        cache = ReplayCache(max_events=max(r.event_count for r in results))
        for (pid, interval_id), result in zip(requests, results):
            cache.put(record, pid, interval_id, result)
        assert len(cache) >= 1
        assert cache.stats.evictions >= len(requests) - len(cache)

    def test_spill_and_reload(self, record, tmp_path):
        package = EmulationPackage(record)
        requests = all_intervals(record)
        results = [package.replay(pid, iid, uid_base=0) for pid, iid in requests]
        cache = ReplayCache(max_events=1, spill_dir=str(tmp_path))
        for (pid, interval_id), result in zip(requests, results):
            cache.put(record, pid, interval_id, result)
        assert cache.stats.spills > 0
        # The evicted entries come back from disk, identical.
        for (pid, interval_id), original in zip(requests, results):
            reloaded = cache.get(record, pid, interval_id)
            assert reloaded is not None
            assert transcript(reloaded) == transcript(original)
        assert cache.stats.spill_hits > 0

    def test_contains_does_not_touch_stats(self, record):
        cache = ReplayCache()
        pid, interval_id = all_intervals(record)[0]
        assert not cache.contains(record, pid, interval_id)
        assert cache.stats.requests == 0


class TestSharedAcrossSessions:
    def test_second_session_start_is_warm(self, record):
        cache = ReplayCache()
        first = PPDSession(record, cache=cache)
        first.start()
        misses = cache.stats.misses
        second = PPDSession(record, cache=cache)
        second.start()
        assert cache.stats.misses == misses  # no new replay executed
        assert cache.stats.hits > 0

    def test_warm_session_graph_identical_to_cold(self, record):
        cold = PPDSession(record, cache=ReplayCache())
        cold.start()
        shared = ReplayCache()
        PPDSession(record, cache=shared).start()  # warm the cache
        warm = PPDSession(record, cache=shared)
        warm.start()
        cold_events = {
            key: transcript(result) for key, result in cold._replayed.items()
        }
        warm_events = {
            key: transcript(result) for key, result in warm._replayed.items()
        }
        assert warm_events == cold_events

    def test_expand_intervals_matches_serial_expansion(self, record):
        requests = all_intervals(record)
        serial = PPDSession(record, cache=ReplayCache())
        for pid, interval_id in requests:
            serial.expand_interval(pid, interval_id)
        batch = PPDSession(record, cache=ReplayCache())
        batch.expand_intervals(requests)
        assert {
            key: transcript(result) for key, result in batch._replayed.items()
        } == {key: transcript(result) for key, result in serial._replayed.items()}

    def test_session_with_pool_matches_serial(self, record):
        serial = PPDSession(record, cache=ReplayCache())
        serial.start()
        pooled = PPDSession(record, cache=ReplayCache())
        pooled.attach_pool(jobs=2)
        try:
            pooled.start()
            pooled.prefetch(all_intervals(record))
        finally:
            pooled.pool.close()
        for key, result in serial._replayed.items():
            assert transcript(pooled._replayed[key]) == transcript(result)

    def test_obs_reset_clears_shared_cache(self, record):
        cache = replay_cache()
        PPDSession(record).start()  # default sessions use the shared cache
        assert cache.describe()["entries"] > 0 or cache.stats.requests > 0
        obs.reset()
        assert len(cache) == 0
        assert cache.stats.requests == 0


class TestIntervalIndexMemo:
    def test_index_built_once_per_record(self, record):
        first = EmulationPackage(record)
        second = EmulationPackage(record)
        assert first.indexes is second.indexes
        assert interval_indexes(record) is first.indexes
