"""The persistent replay cache: ``write_through`` spill-at-insert, the
``PPD_CACHE_DIR`` environment override, and cross-run cache warmth.

The promise under test: point two *independent* processes (modelled here
as two independent ``ReplayCache`` instances) at the same directory and
the second starts warm — keyed by record digest, so even a record
reloaded from disk (different object, same content) hits the same
entries.
"""

import os
import pickle

import pytest

import repro.perf as perf
from repro import Machine, compile_program
from repro.core.emulation import EmulationPackage, interval_indexes
from repro.perf import ReplayCache, ReplayPool, record_digest
from repro.runtime.persist import load_record, save_record
from repro.workloads import fig61_program


@pytest.fixture(scope="module")
def record():
    return Machine(compile_program(fig61_program()), seed=1, mode="logged").run()


@pytest.fixture(scope="module")
def results(record):
    package = EmulationPackage(record)
    return {
        (pid, interval_id): package.replay(pid, interval_id, uid_base=0)
        for pid, index in interval_indexes(record).items()
        for interval_id in index
    }


def spill_files(cache_dir):
    return sorted(n for n in os.listdir(cache_dir) if n.endswith(".replay.pkl"))


class TestWriteThrough:
    def test_spills_at_insert_not_eviction(self, tmp_path, record, results):
        cache = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        (pid, interval_id), result = next(iter(results.items()))
        cache.put(record, pid, interval_id, result)
        assert cache.stats.evictions == 0
        assert cache.stats.spills == 1
        assert len(spill_files(tmp_path)) == 1

    def test_directory_is_a_complete_replica(self, tmp_path, record, results):
        cache = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        for (pid, interval_id), result in results.items():
            cache.put(record, pid, interval_id, result)
        assert len(spill_files(tmp_path)) == len(results)

    def test_spill_loaded_entries_are_not_rewritten(self, tmp_path, record, results):
        writer = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        for (pid, interval_id), result in results.items():
            writer.put(record, pid, interval_id, result)
        reader = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        for pid, interval_id in results:
            assert reader.get(record, pid, interval_id) is not None
        assert reader.stats.spill_hits == len(results)
        assert reader.stats.spills == 0  # re-spilling replicas is wasted I/O

    def test_requires_spill_dir(self):
        cache = ReplayCache(write_through=True)
        assert cache.write_through is False

    def test_describe_reports_mode(self, tmp_path):
        cache = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        info = cache.describe()
        assert info["write_through"] is True
        assert info["spill_dir"] == str(tmp_path)


class TestCrossRunWarmth:
    def test_second_run_starts_warm(self, tmp_path, record, results):
        """Run 1 replays and exits; run 2 serves everything from disk."""
        first = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        with ReplayPool(record, jobs=1, cache=first) as pool:
            pool.replay_batch(sorted(results))
        del first, pool

        second = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        with ReplayPool(record, jobs=1, cache=second) as pool:
            warm = pool.replay_batch(sorted(results))
            assert pool.executed == 0  # nothing re-replayed
        assert second.stats.spill_hits == len(results)
        for key, result in zip(sorted(results), warm):
            assert result == results[key]

    def test_reloaded_record_hits_same_entries(self, tmp_path, record, results):
        """Content addressing: a record round-tripped through persist has
        a different identity but the same digest, so it stays warm."""
        warmed = ReplayCache(spill_dir=str(tmp_path / "cache"), write_through=True)
        for (pid, interval_id), result in results.items():
            warmed.put(record, pid, interval_id, result)

        path = str(tmp_path / "run.ppd.json")
        save_record(record, path)
        reloaded = load_record(path)
        assert reloaded is not record
        assert record_digest(reloaded) == record_digest(record)

        fresh = ReplayCache(spill_dir=str(tmp_path / "cache"), write_through=True)
        pid, interval_id = next(iter(results))
        hit = fresh.get(reloaded, pid, interval_id)
        assert hit is not None
        assert hit == results[(pid, interval_id)]
        assert fresh.stats.spill_hits == 1

    def test_corrupt_spill_degrades_to_miss(self, tmp_path, record, results):
        cache = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        (pid, interval_id), result = next(iter(results.items()))
        cache.put(record, pid, interval_id, result)
        name = spill_files(tmp_path)[0]
        (tmp_path / name).write_bytes(b"PPDSPILL1\n" + b"\x00" * 40)
        fresh = ReplayCache(spill_dir=str(tmp_path), write_through=True)
        assert fresh.get(record, pid, interval_id) is None
        assert fresh.stats.spill_bad == 1
        assert spill_files(tmp_path) == []  # bad file deleted, not re-tripped


class TestEnvOverride:
    @pytest.fixture(autouse=True)
    def _fresh_shared_cache(self, monkeypatch):
        monkeypatch.setattr(perf, "_shared_cache", None)
        yield
        monkeypatch.setattr(perf, "_shared_cache", None)

    def test_ppd_cache_dir_enables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv(perf.CACHE_DIR_ENV, str(tmp_path))
        cache = perf.replay_cache()
        assert cache.spill_dir == str(tmp_path)
        assert cache.write_through is True

    def test_unset_env_keeps_memory_only_default(self, monkeypatch):
        monkeypatch.delenv(perf.CACHE_DIR_ENV, raising=False)
        cache = perf.replay_cache()
        assert cache.spill_dir is None
        assert cache.write_through is False

    def test_shared_cache_round_trips_across_simulated_runs(
        self, tmp_path, monkeypatch, record, results
    ):
        monkeypatch.setenv(perf.CACHE_DIR_ENV, str(tmp_path))
        first = perf.replay_cache()
        (pid, interval_id), result = next(iter(results.items()))
        first.put(record, pid, interval_id, result)
        # Simulate a new process: fresh module state, same environment.
        monkeypatch.setattr(perf, "_shared_cache", None)
        second = perf.replay_cache()
        assert second is not first
        assert second.get(record, pid, interval_id) == result
        assert second.stats.spill_hits == 1


class TestSpillFrameCompatibility:
    def test_write_through_frames_match_eviction_frames(self, tmp_path, record, results):
        """Both spill paths produce the same checksummed frame format, so
        a directory can mix entries from either mode."""
        (pid, interval_id), result = next(iter(results.items()))
        through = ReplayCache(spill_dir=str(tmp_path / "a"), write_through=True)
        through.put(record, pid, interval_id, result)
        evicting = ReplayCache(max_events=1, spill_dir=str(tmp_path / "b"))
        evicting.put(record, pid, interval_id, result)
        other = next(k for k in results if k != (pid, interval_id))
        evicting.put(record, other[0], other[1], results[other])  # forces eviction
        name = spill_files(tmp_path / "a")[0]
        frame_a = (tmp_path / "a" / name).read_bytes()
        frame_b = (tmp_path / "b" / name).read_bytes()
        header = len(b"PPDSPILL1\n") + 32
        assert frame_a[:header] == frame_b[:header]
        assert pickle.loads(frame_a[header:]) == pickle.loads(frame_b[header:])
