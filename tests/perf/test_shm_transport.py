"""The zero-copy replay transport: shared-memory record segments, the
compact wire codec, cost-balanced chunking, and the adaptive policy.

The load-bearing invariants:

* the segment lifecycle never leaks — ``/dev/shm`` ends every test
  exactly as it started (close, context exit, finalizer, pool teardown);
* ``result_from_wire(result_to_wire(r)) == r`` field-for-field, for
  every interval of the reference workloads — the codec is what keeps
  pooled results byte-identical to serial;
* shm pools ship segment *names*, not record bytes.
"""

import gc
import pickle

import pytest

from repro import Machine, compile_program, obs
from repro.core.emulation import EmulationPackage, interval_indexes
from repro.perf import ReplayPool, default_jobs, leaked_segments
from repro.perf.pool import _COLD_STEPS
from repro.perf.shm import RecordSegment, load_pickled, shm_available
from repro.perf.wire import result_from_wire, result_to_wire
from repro.workloads import fig41_program, fig61_program

needs_shm = pytest.mark.skipif(not shm_available(), reason="no POSIX shared memory")


@pytest.fixture(scope="module", params=["fig41", "fig61"])
def record(request):
    source = fig41_program() if request.param == "fig41" else fig61_program()
    return Machine(compile_program(source), seed=0, mode="logged").run()


def all_intervals(record):
    return [
        (pid, interval_id)
        for pid, index in sorted(interval_indexes(record).items())
        for interval_id in sorted(index)
    ]


def transcript(result):
    return [event.to_json() for event in result.events]


@needs_shm
class TestRecordSegment:
    def test_round_trip_and_unlink(self):
        payload = pickle.dumps({"answer": 42, "blob": list(range(1000))})
        segment = RecordSegment(payload)
        assert segment.name in leaked_segments()
        assert load_pickled(segment.name) == {"answer": 42, "blob": list(range(1000))}
        segment.close()
        assert segment.closed
        assert segment.name not in leaked_segments()

    def test_close_is_idempotent(self):
        segment = RecordSegment(b"x" * 64)
        segment.close()
        segment.close()
        assert segment.name not in leaked_segments()

    def test_context_manager_unlinks(self):
        with RecordSegment(pickle.dumps("payload")) as segment:
            name = segment.name
            assert load_pickled(name) == "payload"
        assert name not in leaked_segments()

    def test_finalizer_unlinks_dropped_segments(self):
        """A segment whose owner forgets close() must still not leak."""
        segment = RecordSegment(b"y" * 128)
        name = segment.name
        del segment
        gc.collect()
        assert name not in leaked_segments()

    def test_worker_attach_is_untracked(self):
        """Attaching (worker side) then closing must not unlink the
        segment out from under the owner — only the owner unlinks."""
        segment = RecordSegment(pickle.dumps([1, 2, 3]))
        assert load_pickled(segment.name) == [1, 2, 3]  # attach + close inside
        assert segment.name in leaked_segments()  # still owned, still there
        segment.close()
        assert segment.name not in leaked_segments()

    def test_record_round_trips_through_segment(self, record):
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        with RecordSegment(payload) as segment:
            loaded = load_pickled(segment.name)
        assert loaded.total_steps == record.total_steps
        assert loaded.process_names == record.process_names


class TestWireCodec:
    def test_round_trip_every_interval(self, record):
        package = EmulationPackage(record)
        for pid, interval_id in all_intervals(record):
            result = package.replay(pid, interval_id, uid_base=0)
            decoded = result_from_wire(result_to_wire(result))
            assert decoded == result  # dataclass eq: every field
            assert transcript(decoded) == transcript(result)

    def test_round_trip_survives_pickle(self, record):
        """The wire tuple is what actually crosses the worker pipe."""
        package = EmulationPackage(record)
        pid, interval_id = all_intervals(record)[0]
        result = package.replay(pid, interval_id, uid_base=0)
        wire = pickle.loads(pickle.dumps(result_to_wire(result)))
        assert result_from_wire(wire) == result

    def test_decoded_result_rebases_identically(self, record):
        package = EmulationPackage(record)
        for pid, interval_id in all_intervals(record):
            result = package.replay(pid, interval_id, uid_base=0)
            decoded = result_from_wire(result_to_wire(result))
            assert transcript(decoded.rebased(137)) == transcript(result.rebased(137))


@needs_shm
class TestShmPool:
    @pytest.mark.parametrize("engine", ["interp", "vm"])
    def test_pooled_byte_identical_over_shm(self, record, engine):
        """The tentpole invariant under the new transport, both engines."""
        package = EmulationPackage(record, engine=engine)
        requests = all_intervals(record)
        before = leaked_segments()
        with ReplayPool(record, jobs=2, engine=engine) as pool:
            pooled = pool.replay_batch(requests)
            assert pool.describe()["transport"] == "shm"
        for (pid, interval_id), result in zip(requests, pooled):
            serial = package.replay(pid, interval_id, uid_base=0)
            assert transcript(result) == transcript(serial)
            assert result.trace_of_sync == serial.trace_of_sync
            assert result.final_shared == serial.final_shared
        assert leaked_segments() == before

    def test_shm_ships_names_not_record_bytes(self, record):
        blob_size = len(pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL))
        with ReplayPool(record, jobs=2) as pool:
            pool.replay_batch(all_intervals(record))
            info = pool.describe()
        assert info["transport"] == "shm"
        assert 0 < info["bytes_shipped"] < blob_size
        assert info["bytes_shipped"] < 1024  # a couple of segment names

    def test_chunks_cover_batch_and_respect_jobs(self, record):
        requests = all_intervals(record)
        with ReplayPool(record, jobs=2) as pool:
            pool.replay_batch(requests)
            info = pool.describe()
        assert 1 <= info["chunks"] <= min(len(requests), pool.jobs * 2)

    def test_pool_close_unlinks_segment(self, record):
        before = leaked_segments()
        pool = ReplayPool(record, jobs=2)
        pool.replay_batch(all_intervals(record))
        assert len(leaked_segments()) == len(before) + 1
        pool.close()
        assert leaked_segments() == before

    def test_obs_counts_segment_lifecycle(self, record):
        with obs.capture() as registry:
            with ReplayPool(record, jobs=2) as pool:
                pool.replay_batch(all_intervals(record))
        assert registry.value("perf.shm.created") == 1
        assert registry.value("perf.shm.unlinked") == 1
        assert registry.value("perf.shm.bytes") > 0
        assert registry.value("perf.pool.bytes_shipped") > 0
        assert registry.value("perf.pool.chunks") >= 1


class TestCostModel:
    def test_interval_costs_positive_and_memoized(self, record):
        pool = ReplayPool(record, jobs=1)
        for pid, interval_id in all_intervals(record):
            cost = pool.interval_cost(pid, interval_id)
            assert cost >= 1
            assert pool.interval_cost(pid, interval_id) == cost

    def test_chunking_is_deterministic(self, record):
        requests = all_intervals(record)
        pool = ReplayPool(record, jobs=2)
        try:
            first = pool._chunk(requests)
            second = pool._chunk(requests)
        finally:
            pool.close()
        assert first == second
        assert sorted(key for chunk in first for key in chunk) == sorted(requests)


class TestAdaptivePolicy:
    def test_auto_sizes_jobs_from_cpus(self, record):
        with ReplayPool(record, jobs="auto") as pool:
            assert pool.adaptive
            assert pool.jobs == default_jobs()

    def test_small_batches_stay_serial(self, record):
        """A cold pool never forks workers for a tiny expansion."""
        requests = all_intervals(record)
        with ReplayPool(record, jobs="auto") as pool:
            mass = sum(pool.interval_cost(pid, iid) for pid, iid in requests)
            assert mass < _COLD_STEPS  # the reference workloads are tiny
            results = pool.replay_batch(requests)
            info = pool.describe()
        assert len(results) == len(requests)
        if pool.jobs > 1 and len(requests) > 1:
            assert info["policy"]["serial"] == 1
            assert info["policy"]["pooled"] == 0
            assert info["policy"]["last"] == "serial"
        assert info["parallel"] is False
        assert info["fallbacks"] == 0  # adaptive serial is a choice, not a failure

    def test_adaptive_serial_matches_pooled_results(self, record):
        package = EmulationPackage(record)
        requests = all_intervals(record)
        with ReplayPool(record, jobs="auto") as pool:
            results = pool.replay_batch(requests)
        for (pid, interval_id), result in zip(requests, results):
            assert transcript(result) == transcript(
                package.replay(pid, interval_id, uid_base=0)
            )

    def test_fixed_jobs_pools_do_not_consult_policy(self, record):
        with ReplayPool(record, jobs=2) as pool:
            pool.replay_batch(all_intervals(record))
            info = pool.describe()
        assert info["adaptive"] is False
        assert info["policy"] == {"serial": 0, "pooled": 0, "last": ""}


class TestDefaultJobs:
    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_prefers_process_cpu_count(self, monkeypatch):
        import os as os_module

        import repro.perf.pool as pool_module

        monkeypatch.setattr(os_module, "process_cpu_count", lambda: 7, raising=False)
        assert pool_module.default_jobs() == 7
