"""OrderIndex: indexed happened-before must equal the direct clocks.

Randomization comes from the scheduler seed: each seed yields a different
interleaving, hence a different synchronization history — the property
surface the §6 ordering queries must hold over.
"""

import pytest

from repro import Machine, compile_program
from repro.core.parallel_graph import ParallelDynamicGraph
from repro.core.races import find_races_indexed, find_races_naive
from repro.perf import OrderIndex
from repro.workloads import (
    bank_race,
    dining_philosophers,
    fig61_program,
    producer_consumer,
)

def _ring_counters(workers: int, rounds: int) -> str:
    """Bench E9's scaling workload (inlined — benchmarks/ is not a
    package): W workers in a ring, each updating its own and its
    successor's counter under per-counter semaphores."""
    decls = "\n".join(f"shared int c{i};\nsem m{i} = 1;" for i in range(workers))
    procs = []
    for i in range(workers):
        j = (i + 1) % workers
        procs.append(
            f"""
proc worker{i}() {{
    for (k = 0; k < {rounds}; k = k + 1) {{
        P(m{i});
        c{i} = c{i} + 1;
        V(m{i});
        P(m{j});
        c{j} = c{j} + 1;
        V(m{j});
    }}
    send(done, {i});
}}"""
        )
    spawns = "\n    ".join(f"spawn worker{i}();" for i in range(workers))
    return f"""
{decls}
chan done;
{"".join(procs)}

proc main() {{
    {spawns}
    for (w = 0; w < {workers}; w = w + 1) {{
        int ack = recv(done);
    }}
    join();
}}
"""


WORKLOADS = [
    ("fig61", fig61_program(), range(3)),
    ("bank_race", bank_race(3, 2), range(5)),
    ("producer_consumer", producer_consumer(3, 2), range(4)),
    ("dining", dining_philosophers(4), range(3)),
]


def histories():
    for name, source, seeds in WORKLOADS:
        compiled = compile_program(source)
        for seed in seeds:
            record = Machine(compiled, seed=seed, mode="logged").run()
            yield f"{name}/seed={seed}", record.history


@pytest.fixture(scope="module")
def all_histories():
    return list(histories())


class TestIndexEqualsDirect:
    def test_simultaneous_matches_direct_clocks(self, all_histories):
        for label, history in all_histories:
            graph = ParallelDynamicGraph.from_history(history)
            index = OrderIndex(history)
            edges = graph.internal_edges
            for i, e1 in enumerate(edges):
                for e2 in edges[i + 1:]:
                    assert index.simultaneous(e1, e2) == graph.simultaneous(
                        e1, e2
                    ), f"{label}: segs {e1.segment.seg_id}/{e2.segment.seg_id}"

    def test_edge_ordered_matches_direct_clocks(self, all_histories):
        for label, history in all_histories:
            graph = ParallelDynamicGraph.from_history(history)
            index = OrderIndex(history)
            for e1 in graph.internal_edges:
                for e2 in graph.internal_edges:
                    if e1.segment.seg_id == e2.segment.seg_id:
                        continue
                    assert index.edge_ordered(e1, e2) == graph.edge_ordered(
                        e1, e2
                    ), f"{label}: {e1.segment.seg_id}->{e2.segment.seg_id}"

    def test_node_ordered_matches_node_reaches(self, all_histories):
        for label, history in all_histories:
            index = OrderIndex(history)
            uids = list(history.nodes)
            for a in uids:
                for b in uids:
                    assert index.node_ordered(a, b) == history.node_reaches(
                        a, b
                    ), f"{label}: {a}->{b}"

    def test_index_uses_fewer_comparisons_than_all_pairs(self, all_histories):
        for label, history in all_histories:
            graph = ParallelDynamicGraph.from_history(history)
            index = OrderIndex(history)
            cross_pairs = 0
            edges = graph.internal_edges
            for i, e1 in enumerate(edges):
                for e2 in edges[i + 1:]:
                    if e1.pid != e2.pid:
                        cross_pairs += 1
                        index.simultaneous(e1, e2)
            if cross_pairs:
                assert index.comparisons <= 2 * cross_pairs, label


class TestScansAgree:
    def test_indexed_equals_naive_on_randomized_histories(self, all_histories):
        for label, history in all_histories:
            naive = find_races_naive(history)
            indexed = find_races_indexed(history)
            assert naive.races == indexed.races, label

    def test_scan_order_is_deterministic(self, all_histories):
        """Regression: both scans report in one canonical order — naive
        used to return scan order while indexed sorted."""
        key = lambda r: (r.seg_id_a, r.seg_id_b, r.variable, r.kind)
        for label, history in all_histories:
            naive = find_races_naive(history)
            assert naive.races == sorted(naive.races, key=key), label
            again = find_races_naive(history)
            assert again.races == naive.races, label

    def test_indexed_comparisons_not_worse_than_pre_index_scan(self):
        """The §7 'cheaper algorithm' claim, pinned on bench E9's ring
        workload: the index performs no more clock comparisons than the
        pre-index scan made ``simultaneous()`` calls — even though each of
        those calls internally cost up to *two* clock comparisons."""
        from repro.core.races import WRITE_WRITE, _as_graph, _edge_conflicts

        for workers in (2, 4):
            source = _ring_counters(workers, rounds=3)
            record = Machine(compile_program(source), seed=2, mode="logged").run()
            assert record.failure is None and record.deadlock is None
            graph = _as_graph(record.history)
            readers, writers = {}, {}
            for edge in graph.internal_edges:
                for var in edge.reads:
                    readers.setdefault(var, []).append(edge)
                for var in edge.writes:
                    writers.setdefault(var, []).append(edge)

            # Replica of the scan as it was before the OrderIndex existed:
            # order_checks += 1 per candidate that got past the seen-set.
            seen, pre_change_checks = set(), 0

            def old_check(var, e1, e2):
                nonlocal pre_change_checks
                if e1.pid == e2.pid or e1.segment.seg_id == e2.segment.seg_id:
                    return
                a, b = sorted((e1.segment.seg_id, e2.segment.seg_id))
                if (a, b, var) in seen:
                    return
                pre_change_checks += 1
                if graph.simultaneous(e1, e2):
                    seen.add((a, b, var))

            for var, wlist in writers.items():
                for i, e1 in enumerate(wlist):
                    for e2 in wlist[i + 1:]:
                        old_check(var, e1, e2)
                for e1 in wlist:
                    for e2 in readers.get(var, ()):
                        if (var, WRITE_WRITE) in _edge_conflicts(e1, e2):
                            continue
                        old_check(var, e1, e2)

            scan = find_races_indexed(record.history)
            assert scan.order_checks <= pre_change_checks, (
                f"workers={workers}: {scan.order_checks} > {pre_change_checks}"
            )
            assert scan.races == find_races_naive(record.history).races


class TestGraphIndexes:
    def test_edges_of_uses_per_pid_index(self, all_histories):
        _, history = all_histories[0]
        graph = ParallelDynamicGraph.from_history(history)
        for pid in history.per_process:
            expected = [e for e in graph.internal_edges if e.pid == pid]
            assert graph.edges_of(pid) == expected
        assert "_edges_by_pid" in graph.__dict__

    def test_nodes_of_matches_per_process_order(self, all_histories):
        _, history = all_histories[0]
        graph = ParallelDynamicGraph.from_history(history)
        for pid, uids in history.per_process.items():
            assert [n.uid for n in graph.nodes_of(pid)] == uids

    def test_order_index_rebuilds_when_history_grows(self, all_histories):
        _, history = all_histories[0]
        graph = ParallelDynamicGraph.from_history(history)
        first = graph.order_index()
        assert graph.order_index() is first  # memoized
        # Simulate a manually grown history (tests build these in place).
        segment = history.segments[0]
        history.segments.append(segment)
        graph.internal_edges = [
            type(graph.internal_edges[0])(seg) for seg in history.segments
        ]
        assert graph.order_index() is not first
        history.segments.pop()
