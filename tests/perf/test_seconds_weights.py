"""Replay-cost history (ReplayCache seconds sidecars) and the LPT
chunking weights ReplayPool derives from it."""

from __future__ import annotations

import json
import os

import pytest

from repro import Machine, compile_program
from repro.core.emulation import interval_indexes
from repro.perf import ReplayCache, ReplayPool, record_digest
from repro.workloads import fig41_program


@pytest.fixture(scope="module")
def record():
    return Machine(compile_program(fig41_program()), seed=0, mode="logged").run()


def all_intervals(record):
    return [
        (pid, interval_id)
        for pid, index in sorted(interval_indexes(record).items())
        for interval_id in sorted(index)
    ]


class TestSecondsHistory:
    def test_roundtrip_in_memory(self, record):
        cache = ReplayCache()
        assert cache.seconds_for(record, 0, 1) is None
        cache.note_seconds(record, 0, 1, 0.25)
        assert cache.seconds_for(record, 0, 1) == 0.25

    def test_sidecar_persists_across_cache_instances(self, record, tmp_path):
        cache = ReplayCache(spill_dir=str(tmp_path))
        cache.note_seconds(record, 0, 1, 0.5)
        cache.note_seconds(record, 0, 2, 0.75)
        path = tmp_path / f"{record_digest(record)}.seconds.json"
        assert path.exists()
        assert json.loads(path.read_text()) == {"0:1": 0.5, "0:2": 0.75}

        fresh = ReplayCache(spill_dir=str(tmp_path))
        assert fresh.seconds_for(record, 0, 1) == 0.5
        assert fresh.seconds_for(record, 0, 2) == 0.75

    def test_fresh_measurements_win_over_disk(self, record, tmp_path):
        stale = ReplayCache(spill_dir=str(tmp_path))
        stale.note_seconds(record, 0, 1, 9.0)

        cache = ReplayCache(spill_dir=str(tmp_path))
        cache.note_seconds(record, 0, 1, 0.1)  # fresher than the sidecar
        assert cache.seconds_for(record, 0, 1) == 0.1

    def test_corrupt_sidecar_entries_are_skipped(self, record, tmp_path):
        path = tmp_path / f"{record_digest(record)}.seconds.json"
        path.write_text(json.dumps({"0:1": 0.5, "garbage": 1.0, "0:bad": 2.0}))
        cache = ReplayCache(spill_dir=str(tmp_path))
        assert cache.seconds_for(record, 0, 1) == 0.5

    def test_no_sidecar_without_spill_dir(self, record, tmp_path):
        cache = ReplayCache()
        cache.note_seconds(record, 0, 1, 0.5)
        assert not any(
            name.endswith(".seconds.json") for name in os.listdir(tmp_path)
        )


class TestChunkWeights:
    def test_step_costs_without_cache(self, record):
        keys = all_intervals(record)
        with ReplayPool(record, jobs=2) as pool:
            weights = pool._chunk_weights(keys)
            expected = [float(pool.interval_cost(p, i)) for p, i in keys]
        assert weights == expected

    def test_step_costs_with_empty_history(self, record):
        keys = all_intervals(record)
        with ReplayPool(record, jobs=2, cache=ReplayCache()) as pool:
            weights = pool._chunk_weights(keys)
            expected = [float(pool.interval_cost(p, i)) for p, i in keys]
        assert weights == expected

    def test_measured_seconds_override_step_costs(self, record):
        keys = all_intervals(record)
        cache = ReplayCache()
        for pid, interval_id in keys:
            cache.note_seconds(record, pid, interval_id, 0.5)
        with ReplayPool(record, jobs=2, cache=cache) as pool:
            assert pool._chunk_weights(keys) == [0.5] * len(keys)

    def test_gaps_estimated_at_median_observed_rate(self, record):
        keys = all_intervals(record)
        assert len(keys) >= 2
        cache = ReplayCache()
        measured, unmeasured = keys[0], keys[1]
        with ReplayPool(record, jobs=2, cache=cache) as pool:
            rate = 2.0  # seconds per step, deliberately implausible
            cache.note_seconds(
                record, *measured, pool.interval_cost(*measured) * rate
            )
            weights = pool._chunk_weights(keys)
            assert weights[0] == pool.interval_cost(*measured) * rate
            assert weights[1] == pool.interval_cost(*unmeasured) * rate

    def test_pool_records_history_for_replayed_intervals(self, record):
        cache = ReplayCache()
        keys = all_intervals(record)
        with ReplayPool(record, jobs=1, cache=cache) as pool:
            pool.replay_batch(keys)
        for pid, interval_id in keys:
            seconds = cache.seconds_for(record, pid, interval_id)
            assert seconds is not None and seconds >= 0.0
