"""Randomised *parallel* program fuzzing.

Generates random but well-formed parallel topologies — workers touching
shared counters either bare (racy) or behind per-counter semaphores
(safe), wired to main by channels — and checks the system-level contracts:

* instrumentation transparency under every seed,
* the race detector's verdict matches the construction (bare counters
  shared by 2+ workers <=> races reported, modulo schedules where the
  accesses were ordered by luck... which cannot happen here because the
  workers share no synchronization at all),
* naive and indexed scans agree,
* every closed interval replays cleanly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, compile_program
from repro.core import EmulationPackage, find_races_indexed, find_races_naive
from repro.runtime import build_interval_index


@st.composite
def parallel_programs(draw):
    """A random worker/counter topology.

    Returns (source, racy_expected): racy_expected is True iff some bare
    (unguarded) counter is written by at least two workers.
    """
    n_counters = draw(st.integers(1, 3))
    n_workers = draw(st.integers(1, 3))
    guarded = [draw(st.booleans()) for _ in range(n_counters)]
    # worker -> list of counters it updates
    assignments = [
        draw(st.lists(st.integers(0, n_counters - 1), min_size=1, max_size=3))
        for _ in range(n_workers)
    ]
    rounds = draw(st.integers(1, 2))

    writers_per_counter = [0] * n_counters
    for counters in assignments:
        for counter in set(counters):
            writers_per_counter[counter] += 1
    racy_expected = any(
        writers_per_counter[i] >= 2 and not guarded[i] for i in range(n_counters)
    )

    decls = []
    for i in range(n_counters):
        decls.append(f"shared int c{i};")
        if guarded[i]:
            decls.append(f"sem m{i} = 1;")
    procs = []
    for w, counters in enumerate(assignments):
        body = []
        for _ in range(rounds):
            for counter in counters:
                if guarded[counter]:
                    body.append(f"P(m{counter});")
                    body.append(f"c{counter} = c{counter} + 1;")
                    body.append(f"V(m{counter});")
                else:
                    body.append(f"c{counter} = c{counter} + 1;")
        body.append(f"send(done, {w});")
        procs.append(
            f"proc worker{w}() {{\n    " + "\n    ".join(body) + "\n}"
        )
    spawns = "\n    ".join(f"spawn worker{w}();" for w in range(n_workers))
    source = (
        "\n".join(decls)
        + "\nchan done;\n"
        + "\n".join(procs)
        + f"""
proc main() {{
    {spawns}
    for (k = 0; k < {n_workers}; k = k + 1) {{
        int ack = recv(done);
    }}
    join();
    print("done");
}}
"""
    )
    return source, racy_expected


@given(parallel_programs(), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_parallel_fuzz_transparency(case, seed):
    source, _ = case
    compiled = compile_program(source)
    plain = Machine(compiled, seed=seed, mode="plain").run()
    logged = Machine(compiled, seed=seed, mode="logged").run()
    assert plain.output == logged.output
    assert plain.total_steps == logged.total_steps
    assert plain.deadlock is None and logged.deadlock is None


@given(parallel_programs(), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_parallel_fuzz_no_phantom_races(case, seed):
    """Soundness per schedule: safe constructions never report a race, and
    the two scan algorithms always agree."""
    source, racy_expected = case
    compiled = compile_program(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    naive = find_races_naive(record.history)
    indexed = find_races_indexed(record.history)
    key = lambda r: (r.seg_id_a, r.seg_id_b, r.variable, r.kind)
    assert sorted(map(key, naive.races)) == sorted(map(key, indexed.races))
    if not racy_expected:
        counter_races = [r for r in indexed.races if r.variable.startswith("c")]
        assert not counter_races, "phantom race on a safe construction"


@given(parallel_programs())
@settings(max_examples=25, deadline=None)
def test_parallel_fuzz_racy_constructions_detected_on_some_schedule(case):
    """Completeness across schedules.  Def 6.4 deliberately speaks of an
    execution *instance*: a bare counter's accesses can be ordered through
    an unrelated guarded counter's semaphore on a particular schedule
    (hypothesis found exactly such a topology), so a single seed may be
    genuinely race-free.  Across a spread of schedules the unordered pair
    must show up."""
    source, racy_expected = case
    if not racy_expected:
        return
    compiled = compile_program(source)
    for seed in range(15):
        record = Machine(compiled, seed=seed, mode="logged").run()
        races = find_races_indexed(record.history).races
        if any(r.variable.startswith("c") for r in races):
            return
    raise AssertionError("constructed race undetected on 15 schedules")


@given(parallel_programs(), st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_parallel_fuzz_replay_fidelity(case, seed):
    source, _ = case
    compiled = compile_program(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    emulation = EmulationPackage(record)
    base = 0
    for pid, log in record.logs.items():
        for info in build_interval_index(log).values():
            if info.is_open:
                continue
            result = emulation.replay(pid, info.interval_id, uid_base=base)
            base += len(result.events) + 1
            assert not result.halted, (pid, info.proc_name, result.diagnostics)
