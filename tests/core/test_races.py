"""Race-detection tests: Defs 6.1-6.4 and the two scan algorithms (E7/E9)."""

from repro import compile_program, Machine
from repro.core import (
    READ_WRITE,
    WRITE_WRITE,
    find_races_indexed,
    find_races_naive,
    is_race_free,
    races_involving,
)
from repro.runtime import run_program
from repro.workloads import (
    bank_race,
    bank_safe,
    fig53_program,
    fig61_program,
    pipeline,
    producer_consumer,
)


class TestDetection:
    def test_write_write_race_detected(self):
        record = run_program(bank_race(2, 2), seed=3)
        scan = find_races_indexed(record.history)
        assert not scan.is_race_free
        kinds = {r.kind for r in scan.races}
        assert WRITE_WRITE in kinds

    def test_read_write_race_detected(self):
        record = run_program(fig61_program(), seed=1)
        races = races_involving(record.history, "SV")
        assert races
        assert any(r.kind == READ_WRITE for r in races)

    def test_race_sites_reported(self):
        record = run_program(bank_race(2, 2), seed=3)
        scan = find_races_indexed(record.history)
        race = next(r for r in scan.races if r.variable == "balance")
        assert race.sites_a or race.sites_b

    def test_race_involves(self):
        record = run_program(bank_race(2, 2), seed=3)
        race = find_races_indexed(record.history).races[0]
        assert race.involves(race.pid_a)
        assert not race.involves(99)

    def test_detection_is_interleaving_independent(self):
        """The race is detected even on seeds where it does not manifest
        (the assertion passes): unordered access is a property of the
        parallel dynamic graph, not of the observed values."""
        compiled = compile_program(bank_race(2, 1))
        manifested, detected = 0, 0
        for seed in range(12):
            record = Machine(compiled, seed=seed).run()
            if record.failure is not None:
                manifested += 1
            if not find_races_indexed(record.history).is_race_free:
                detected += 1
        assert detected == 12
        assert manifested < 12  # some schedules get lucky


class TestRaceFreedom:
    def test_semaphore_protected_is_race_free(self):
        for seed in range(5):
            record = run_program(bank_safe(2, 3), seed=seed)
            assert is_race_free(record.history), seed

    def test_message_passing_only_is_race_free(self):
        record = run_program(producer_consumer(6, 2), seed=4)
        assert is_race_free(record.history)

    def test_pipeline_is_race_free(self):
        record = run_program(pipeline(3, 4), seed=2)
        assert is_race_free(record.history)

    def test_fig53_workers_race_free(self):
        # One worker uses P/V around SV; the other never touches SV.
        record = run_program(fig53_program(), seed=1)
        assert is_race_free(record.history)

    def test_sequential_program_trivially_race_free(self):
        record = run_program("proc main() { int a = 1; print(a); }")
        assert is_race_free(record.history)


class TestAlgorithmsAgree:
    def test_naive_and_indexed_find_same_races(self):
        for source, seeds in [
            (bank_race(2, 3), range(6)),
            (bank_safe(2, 2), range(4)),
            (fig61_program(), range(4)),
            (producer_consumer(5, 1), range(3)),
        ]:
            compiled = compile_program(source)
            for seed in seeds:
                record = Machine(compiled, seed=seed).run()
                naive = find_races_naive(record.history)
                indexed = find_races_indexed(record.history)
                key = lambda r: (r.seg_id_a, r.seg_id_b, r.variable, r.kind)
                assert sorted(map(key, naive.races)) == sorted(
                    map(key, indexed.races)
                ), (source[:40], seed)

    def test_indexed_does_less_ordering_work(self):
        record = run_program(bank_safe(3, 3), seed=2)
        naive = find_races_naive(record.history)
        indexed = find_races_indexed(record.history)
        assert indexed.order_checks < naive.order_checks


class TestThreeWayExample:
    def test_section_63_worked_example(self):
        """§6.3: SV written in e1, read in e3 (ordered: no race); adding an
        unordered writer in e2 creates the race."""
        ordered = """
shared int SV;
sem ready = 0;
chan out;
proc writer() { SV = 1; V(ready); }
proc reader() { P(ready); int x = SV; send(out, x); }
proc main() { spawn writer(); spawn reader(); int r = recv(out); join(); }
"""
        record = run_program(ordered, seed=2)
        assert is_race_free(record.history)

        with_interloper = """
shared int SV;
sem ready = 0;
chan out;
proc writer() { SV = 1; V(ready); }
proc interloper() { SV = 2; }
proc reader() { P(ready); int x = SV; send(out, x); }
proc main() { spawn writer(); spawn interloper(); spawn reader(); int r = recv(out); join(); }
"""
        record = run_program(with_interloper, seed=2)
        races = races_involving(record.history, "SV")
        assert races
        kinds = {r.kind for r in races}
        assert WRITE_WRITE in kinds  # writer vs interloper
        assert READ_WRITE in kinds  # interloper vs reader
