"""Deadlock-cause analysis tests (§6)."""

from repro import compile_program, Machine, analyze_deadlock
from repro.runtime import run_program
from repro.workloads import dining_philosophers


def deadlocked_record(source, max_seed=40):
    compiled = compile_program(source)
    for seed in range(max_seed):
        record = Machine(compiled, seed=seed).run()
        if record.deadlock is not None:
            return record
    raise AssertionError("no deadlock found")


class TestDiningPhilosophers:
    def test_cycle_found(self):
        record = deadlocked_record(dining_philosophers(3))
        report = analyze_deadlock(record)
        assert report.is_deadlock
        assert report.cycle
        assert len(set(report.cycle)) == len(report.cycle)

    def test_wait_for_edges_name_lock_holders(self):
        record = deadlocked_record(dining_philosophers(2))
        report = analyze_deadlock(record)
        assert report.edges
        for edge in report.edges:
            assert edge.kind == "lock"
            assert edge.waiter != edge.holder

    def test_describe_mentions_circular_wait(self):
        record = deadlocked_record(dining_philosophers(3))
        text = analyze_deadlock(record).describe()
        assert "DEADLOCK" in text
        assert "circular wait" in text
        assert "fork" in text

    def test_sync_history_attached(self):
        record = deadlocked_record(dining_philosophers(2))
        report = analyze_deadlock(record)
        for pid, _, _ in report.blocked:
            if record.process_names[pid].startswith("philosopher"):
                assert any("lock" in s for s in report.recent_syncs[pid])


class TestSemaphoreDeadlock:
    def test_crossed_semaphores(self):
        source = """
sem a = 1;
sem b = 1;
proc one() { P(a); P(b); V(b); V(a); }
proc two() { P(b); P(a); V(a); V(b); }
proc main() { spawn one(); spawn two(); join(); }
"""
        record = deadlocked_record(source)
        report = analyze_deadlock(record)
        assert report.is_deadlock
        assert report.cycle
        kinds = {edge.kind for edge in report.edges}
        assert kinds == {"sem"}


class TestNoDeadlock:
    def test_clean_run_reports_nothing(self):
        record = run_program("proc main() { print(1); }")
        report = analyze_deadlock(record)
        assert not report.is_deadlock
        assert "no deadlock" in report.describe()

    def test_channel_starvation_reported_without_cycle(self):
        record = run_program("chan c;\nproc main() { int v = recv(c); }")
        report = analyze_deadlock(record)
        assert report.is_deadlock
        assert not report.cycle  # nobody holds anything; just starvation
        assert "recv(c)" in report.describe()
