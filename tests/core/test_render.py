"""Renderer tests: text and DOT for the four graphs."""

from repro import (
    compile_program,
    Machine,
    PPDSession,
    render_flowback,
    render_parallel,
    render_simplified,
)
from repro.core import dynamic_to_dot, parallel_to_dot, render_dynamic_fragment
from repro.runtime import run_program
from repro.workloads import fig41_program, fig53_program, fig61_program


class TestSimplifiedRender:
    def test_fig53_render_contains_units(self):
        compiled = compile_program(fig53_program())
        text = render_simplified(compiled.simplified["foo3"])
        assert "simplified static graph of foo3" in text
        assert "unit 1" in text
        assert "reads=['SV']" in text

    def test_edges_listed(self):
        compiled = compile_program(fig53_program())
        text = render_simplified(compiled.simplified["foo3"])
        assert "e1:" in text


class TestParallelRender:
    def test_fig61_render(self):
        record = Machine(compile_program(fig61_program()), seed=1).run()
        text = render_parallel(record.history, record.process_names)
        assert "parallel dynamic graph" in text
        assert "[zero events]" in text
        assert "unblock" in text
        assert "W=['SV']" in text

    def test_parallel_dot_is_wellformed(self):
        record = Machine(compile_program(fig61_program()), seed=1).run()
        dot = parallel_to_dot(record.history)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")
        assert "cluster_p0" in dot


class TestDynamicRender:
    def session(self):
        record = run_program(fig41_program(), seed=0)
        session = PPDSession(record)
        session.start()
        return session

    def test_fragment_render(self):
        session = self.session()
        text = render_dynamic_fragment(session.graph)
        assert "SubD()" in text
        assert "-data->" in text
        assert "-control->" in text

    def test_dot_render(self):
        session = self.session()
        dot = dynamic_to_dot(session.graph)
        assert dot.startswith("digraph")
        assert "shape=box" in dot  # the sub-graph node
        assert dot.count("{") == dot.count("}")

    def test_fragment_with_uid_filter(self):
        session = self.session()
        uids = sorted(u for u in session.graph.nodes if u >= 0)[:3]
        text = render_dynamic_fragment(session.graph, uids)
        assert text.count("#") >= 3


class TestFlowbackRender:
    def test_tree_shape(self):
        record = run_program(fig41_program(), seed=0)
        session = PPDSession(record)
        session.start()
        failure = session.failure_event()
        text = render_flowback(session.flowback(failure.uid, max_depth=6))
        assert "[data:" in text
        assert "|-" in text or "`-" in text

    def test_values_toggle(self):
        record = run_program(fig41_program(), seed=0)
        session = PPDSession(record)
        session.start()
        failure = session.failure_event()
        tree = session.flowback(failure.uid, max_depth=4)
        with_values = render_flowback(tree, show_values=True)
        without = render_flowback(tree, show_values=False)
        assert " = " in with_values
        assert len(without) <= len(with_values)
