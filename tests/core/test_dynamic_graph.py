"""Dynamic-graph builder unit tests (§4.2)."""

from repro import compile_program, PPDSession
from repro.baselines import run_with_full_trace
from repro.core import DATA, FLOW, SINGULAR, SYNC_EDGE
from repro.runtime import run_program
from repro.workloads import bank_safe, fig41_program


def graph_of(source, seed=0, inputs=None):
    session = PPDSession(run_program(source, seed=seed, inputs=inputs))
    session.start()
    return session.graph


class TestNodes:
    def test_assignment_becomes_singular_node(self):
        graph = graph_of("proc main() { int a = 7; print(a); }")
        nodes = graph.find_assignments("a")
        assert len(nodes) == 1
        assert nodes[0].kind == SINGULAR
        assert nodes[0].value == 7

    def test_each_execution_gets_its_own_node(self):
        graph = graph_of(
            "proc main() { int s = 0; for (i = 0; i < 3; i = i + 1) { s = s + 1; } print(s); }"
        )
        s_nodes = graph.find_assignments("s")
        assert len(s_nodes) == 4  # decl + 3 iterations

    def test_predicate_node_per_evaluation(self):
        graph = graph_of(
            "proc main() { int i = 0; while (i < 2) { i = i + 1; } }"
        )
        preds = [n for n in graph.nodes.values() if "while" in n.label]
        assert len(preds) == 3  # true, true, false

    def test_array_element_labels(self):
        graph = graph_of("proc main() { int a[3]; a[1] = 5; print(a[1]); }")
        writes = graph.find_assignments("a[1]")
        assert len(writes) == 1


class TestEdges:
    def test_flow_edges_follow_process_order(self):
        graph = graph_of("proc main() { int a = 1; int b = 2; }")
        a_node = graph.find_assignments("a")[0]
        flows = graph.edges_from(a_node.uid, FLOW)
        assert flows
        assert graph.nodes[flows[0].dst].label.startswith("b")

    def test_data_edge_labels_carry_variable(self):
        graph = graph_of("proc main() { int a = 1; int b = a; }")
        b_node = graph.find_assignments("b")[0]
        (edge,) = graph.edges_into(b_node.uid, DATA)
        assert edge.label == "a"

    def test_loop_carried_data_edge(self):
        graph = graph_of(
            "proc main() { int s = 1; int i = 0; while (i < 2) { s = s + s; i = i + 1; } }"
        )
        s_nodes = graph.find_assignments("s")
        last = s_nodes[-1]
        parents = [n for n, _ in graph.data_parents(last.uid)]
        assert s_nodes[-2].uid in {p.uid for p in parents}

    def test_control_edge_from_governing_predicate_instance(self):
        graph = graph_of(
            "proc main() { for (i = 0; i < 2; i = i + 1) { int unused = i; } }"
        )
        assigns = graph.find_assignments("unused")
        assert len(assigns) == 2
        parents = [graph.control_parent(n.uid) for n in assigns]
        # Each iteration's body hangs off a *different* predicate instance.
        assert parents[0].uid != parents[1].uid

    def test_initial_node_for_never_written_shared(self):
        graph = graph_of("shared int SV;\nproc main() { print(SV); }")
        initials = graph.nodes_of_kind("initial")
        assert any("SV" in n.label for n in initials)

    def test_sync_edges_in_full_trace_graph(self):
        compiled = compile_program(bank_safe(2, 2))
        session = run_with_full_trace(compiled, seed=1)
        sync_edges = [e for e in session.graph.edges if e.kind == SYNC_EDGE]
        assert sync_edges
        cross = [
            e
            for e in sync_edges
            if session.graph.nodes[e.src].pid != session.graph.nodes[e.dst].pid
        ]
        assert cross  # spawn/msg/sem edges span processes


class TestInterior:
    def test_interior_of_inline_call(self):
        compiled = compile_program(fig41_program())
        session = run_with_full_trace(compiled, seed=0)
        call = next(
            n for n in session.graph.nodes.values() if n.kind == "subgraph"
        )
        interior = session.graph.interior_of(call.uid)
        assert interior
        labels = {session.graph.nodes[u].label for u in interior}
        assert any(label.startswith("ENTRY SubD") for label in labels)

    def test_interior_of_unexpanded_replay_subgraph_is_empty(self):
        session = PPDSession(run_program(fig41_program(), seed=0))
        session.start()
        call = next(
            n
            for n in session.graph.nodes.values()
            if n.kind == "subgraph" and n.interval_id is not None
        )
        assert session.graph.interior_of(call.uid) == []
