"""Screen-sized graph view tests (§3.2.3)."""

import pytest

from repro import PPDSession
from repro.core import PPDCommandLine, focused_view
from repro.runtime import run_program
from repro.workloads import fib_recursive

CHAIN = """
proc main() {
    int a = 1;
    int b = a + 1;
    int c = b + 1;
    int d = c + 1;
    int e = d + 1;
    int f = e + 1;
    print(f);
}
"""


def session_for(source, **kwargs):
    session = PPDSession(run_program(source, **kwargs))
    session.start()
    return session


class TestFocusedView:
    def test_budget_respected(self):
        session = session_for(CHAIN)
        f_node = session.graph.find_assignments("f")[0]
        view = focused_view(session.graph, f_node.uid, budget=3)
        assert view.size == 3

    def test_nearest_causes_first(self):
        session = session_for(CHAIN)
        f_node = session.graph.find_assignments("f")[0]
        view = focused_view(session.graph, f_node.uid, budget=3)
        labels = {node.label.split(" ")[0] for node in view.nodes}
        # BFS from f: f itself, then e (data) and entry (control).
        assert "f" in labels and "e" in labels

    def test_frontier_marks_cut_branches(self):
        session = session_for(CHAIN)
        f_node = session.graph.find_assignments("f")[0]
        view = focused_view(session.graph, f_node.uid, budget=3)
        assert view.frontier  # d and below were cut

    def test_whole_cone_has_no_frontier_markers_for_interior(self):
        session = session_for(CHAIN)
        f_node = session.graph.find_assignments("f")[0]
        view = focused_view(session.graph, f_node.uid, budget=100)
        a_node = session.graph.find_assignments("a")[0]
        assert a_node.uid in {n.uid for n in view.nodes}

    def test_edges_restricted_to_visible(self):
        session = session_for(CHAIN)
        f_node = session.graph.find_assignments("f")[0]
        view = focused_view(session.graph, f_node.uid, budget=4)
        visible = {n.uid for n in view.nodes}
        for edge in view.edges:
            assert edge.src in visible and edge.dst in visible

    def test_render(self):
        session = session_for(CHAIN)
        f_node = session.graph.find_assignments("f")[0]
        text = focused_view(session.graph, f_node.uid, budget=4).render()
        assert "view of 4 nodes" in text
        assert "[+more]" in text

    def test_unknown_focus_raises(self):
        session = session_for(CHAIN)
        with pytest.raises(KeyError):
            focused_view(session.graph, 987654)

    def test_view_scales_on_large_graph(self):
        session = session_for(fib_recursive(10))
        root = next(
            n for n in session.graph.nodes.values() if "print" in n.label
        )
        session.flowback_expanding(root.uid, max_depth=6, budget=6)
        view = focused_view(session.graph, root.uid, budget=10)
        assert view.size == 10
        assert view.frontier


class TestCliView:
    def test_view_command(self):
        record = run_program(CHAIN)
        cli = PPDCommandLine(record)
        f_node = cli.session.graph.find_assignments("f")[0]
        out = cli.execute(f"view {f_node.uid} 4")
        assert "view of 4 nodes" in out
