"""Renderer edge cases: DOT structure, empty graphs, rendezvous labels."""

from repro import compile_program, Machine, PPDSession
from repro.core import dynamic_to_dot, parallel_to_dot, render_parallel
from repro.core.render import render_flowback
from repro.runtime import run_program
from repro.workloads import rpc_server


class TestDotStructure:
    def test_dot_quotes_escaped(self):
        source = 'proc main() { print("he said \\"hi\\""); }'
        session = PPDSession(run_program(source))
        session.start()
        dot = dynamic_to_dot(session.graph)
        # Double quotes inside labels must not break the DOT syntax.
        for line in dot.splitlines():
            if "label=" in line:
                assert line.count('"') % 2 == 0

    def test_parallel_dot_clusters_per_process(self):
        record = Machine(compile_program(rpc_server(2, 1)), seed=0, mode="logged").run()
        dot = parallel_to_dot(record.history)
        clusters = dot.count("subgraph cluster_")
        assert clusters == len(record.process_names)

    def test_rendezvous_ops_rendered(self):
        record = Machine(compile_program(rpc_server(1, 1)), seed=0, mode="logged").run()
        text = render_parallel(record.history, record.process_names)
        for op in ("call(compute)", "accept(compute)", "reply(compute)", "return(compute)"):
            assert op in text
        assert "[rendezvous]" in text


class TestFlowbackRenderEdges:
    def test_single_node_tree(self):
        session = PPDSession(run_program("proc main() { print(1); }"))
        session.start()
        node = next(n for n in session.graph.nodes.values() if "print" in n.label)
        tree = session.flowback(node.uid, max_depth=0)
        text = render_flowback(tree)
        assert "print" in text

    def test_truncation_marker(self):
        source = "proc main() { int a = 1; int b = a; int c = b; print(c); }"
        session = PPDSession(run_program(source))
        session.start()
        node = next(n for n in session.graph.nodes.values() if "print" in n.label)
        tree = session.flowback(node.uid, max_depth=1)
        assert "..." in render_flowback(tree)
