"""Flowback query tests: backward, forward, slices (§1, §4)."""

from repro import PPDSession
from repro.core import flow_forward, flowback, last_assignment, slice_statements, why_value
from repro.runtime import run_program


def graph_for(source, seed=0, inputs=None):
    session = PPDSession(run_program(source, seed=seed, inputs=inputs))
    session.start()
    return session


SIMPLE = """
proc main() {
    int a = 2;
    int b = a * 3;
    int unrelated = 99;
    int c = b + a;
    print(c);
}
"""


class TestBackward:
    def test_chain_reaches_origin(self):
        session = graph_for(SIMPLE)
        c_node = last_assignment(session.graph, "c")
        tree = flowback(session.graph, c_node.uid)
        labels = {step.node.label for step in tree.root.walk()}
        assert any(label.startswith("a ") for label in labels)
        assert any(label.startswith("b ") for label in labels)

    def test_unrelated_statement_excluded(self):
        session = graph_for(SIMPLE)
        c_node = last_assignment(session.graph, "c")
        tree = flowback(session.graph, c_node.uid)
        assert not tree.reaches(lambda n: n.label.startswith("unrelated"))

    def test_why_value_helper(self):
        session = graph_for(SIMPLE)
        tree = why_value(session.graph, "c")
        assert tree is not None
        assert tree.root.node.value == 8

    def test_why_value_missing_var(self):
        session = graph_for(SIMPLE)
        assert why_value(session.graph, "ghost") is None

    def test_max_depth_truncates(self):
        source = """
proc main() {
    int x = 1;
    x = x + 1; x = x + 1; x = x + 1; x = x + 1; x = x + 1;
    print(x);
}
"""
        session = graph_for(source)
        node = last_assignment(session.graph, "x")
        tree = flowback(session.graph, node.uid, max_depth=2)
        assert any(step.truncated for step in tree.root.walk())

    def test_control_edges_optional(self):
        source = "proc main() { int a = 1; if (a > 0) { a = 2; } print(a); }"
        session = graph_for(source)
        node = last_assignment(session.graph, "a")
        with_control = flowback(session.graph, node.uid, include_control=True)
        without = flowback(session.graph, node.uid, include_control=False)
        assert len(list(with_control.root.walk())) >= len(list(without.root.walk()))

    def test_shared_cycle_handled(self):
        # s depends on itself across loop iterations; flowback must not
        # loop forever (visited-set sharing).
        source = (
            "proc main() { int s = 1; int i = 0; "
            "while (i < 20) { s = s + s; i = i + 1; } print(s); }"
        )
        session = graph_for(source)
        node = last_assignment(session.graph, "s")
        tree = flowback(session.graph, node.uid, max_depth=50)
        assert tree.root is not None


class TestForward:
    def test_forward_reaches_consumers(self):
        session = graph_for(SIMPLE)
        a_node = session.graph.find_assignments("a")[0]
        tree = flow_forward(session.graph, a_node.uid)
        assert tree.reaches(lambda n: n.label.startswith("b "))
        assert tree.reaches(lambda n: n.label.startswith("c "))

    def test_forward_excludes_non_dependents(self):
        session = graph_for(SIMPLE)
        unrelated = session.graph.find_assignments("unrelated")[0]
        tree = flow_forward(session.graph, unrelated.uid)
        assert not tree.reaches(lambda n: n.label.startswith("c "))


class TestSlices:
    def test_slice_statements_sorted(self):
        session = graph_for(SIMPLE)
        c_node = last_assignment(session.graph, "c")
        tree = flowback(session.graph, c_node.uid)
        labels = slice_statements(tree)
        assert labels == sorted(labels, key=lambda s: int(s[1:]))
        assert len(labels) >= 3

    def test_slice_excludes_unrelated(self):
        session = graph_for(SIMPLE)
        c_node = last_assignment(session.graph, "c")
        unrelated = last_assignment(session.graph, "unrelated")
        tree = flowback(session.graph, c_node.uid)
        assert unrelated.stmt_label not in slice_statements(tree)
