"""Emulation-package tests: debug-phase replay fidelity (§5.2-§5.3)."""

import pytest

from repro.compiler import EBlockPolicy
from repro.core import EmulationPackage
from repro.runtime import build_interval_index, innermost_open_interval, run_program
from repro.workloads import (
    bank_safe,
    buggy_average,
    fib_recursive,
    fig53_program,
    nested_calls,
)


def interval_of(record, pid, proc_name):
    index = build_interval_index(record.logs[pid])
    return next(i for i in index.values() if i.proc_name == proc_name)


class TestSequentialReplay:
    def test_replay_reproduces_output(self):
        src = 'proc main() { int a = 2; int b = a * 3; print("b =", b); }'
        record = run_program(src, seed=0)
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "main")
        result = emu.replay(0, info.interval_id)
        assert result.output == ["b = 6"]
        assert not result.halted
        assert not result.diagnostics

    def test_replay_consumes_inputs_from_log(self):
        src = "proc main() { int a = input(); int b = input(); print(a - b); }"
        record = run_program(src, inputs=[50, 8])
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "main")
        result = emu.replay(0, info.interval_id)
        assert result.output == ["42"]

    def test_replay_retval(self):
        record = run_program(nested_calls(), seed=0)
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "SubK")
        result = emu.replay(0, info.interval_id)
        assert result.retval == 10

    def test_nested_call_becomes_subgraph(self):
        record = run_program(nested_calls(), seed=0)
        emu = EmulationPackage(record)
        subj = interval_of(record, 0, "SubJ")
        result = emu.replay(0, subj.interval_id)
        # SubK is not re-executed: its postlog substitutes (§5.2).
        assert result.subgraph_intervals
        kinds = {e.kind for e in result.events}
        assert "enter" not in {e.proc for e in result.events if e.proc == "SubK"}
        # But the computed result is identical.
        assert result.retval == 10 + 10  # before=10, inner=10, after=20

    def test_replaying_parent_then_child_matches(self):
        record = run_program(nested_calls(), seed=0)
        emu = EmulationPackage(record)
        subj = interval_of(record, 0, "SubJ")
        subk = interval_of(record, 0, "SubK")
        parent = emu.replay(0, subj.interval_id)
        child = emu.replay(0, subk.interval_id, uid_base=10_000)
        assert child.retval == 10
        # Child replay has strictly more events than the sub-graph stub.
        assert child.event_count > 0

    def test_recursion_replay(self):
        record = run_program(fib_recursive(7), seed=0)
        emu = EmulationPackage(record)
        index = build_interval_index(record.logs[0])
        # Replay the root fib call: nested calls are skipped via postlogs.
        root_fib = min(
            (i for i in index.values() if i.proc_name == "fib"),
            key=lambda i: i.start_index,
        )
        result = emu.replay(0, root_fib.interval_id)
        assert result.retval == 13
        assert len(result.subgraph_intervals) == 2  # fib(6) and fib(5)

    def test_loop_block_skip_and_expand(self):
        record = run_program(
            nested_calls(), seed=0, policy=EBlockPolicy(loop_block_min_stmts=1)
        )
        emu = EmulationPackage(record)
        index = build_interval_index(record.logs[0])
        subk = next(i for i in index.values() if i.proc_name == "SubK")
        loop = next(i for i in index.values() if i.block_kind == "loop")
        # Replaying SubK skips the loop via its postlog...
        outer = emu.replay(0, subk.interval_id)
        assert outer.retval == 10
        assert loop.interval_id in outer.subgraph_intervals.values()
        # ...and the loop interval itself replays on demand.
        inner = emu.replay(0, loop.interval_id, uid_base=5_000)
        assert not inner.halted
        assert any(e.kind == "pred" for e in inner.events)

    def test_replay_of_open_interval_stops_at_halt_point(self):
        record = run_program(buggy_average(5), inputs=[10, 20, 30, 40, 50])
        assert record.failure is not None
        emu = EmulationPackage(record)
        open_info = innermost_open_interval(record.logs[0])
        result = emu.replay(0, open_info.interval_id)
        assert result.halted
        assert "assertion failed" in result.failure_message

    def test_replay_is_deterministic(self):
        record = run_program(nested_calls(), seed=0)
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "SubJ")
        first = emu.replay(0, info.interval_id)
        second = emu.replay(0, info.interval_id)
        assert [e.to_json() for e in first.events] == [
            e.to_json() for e in second.events
        ]

    def test_uid_base_offsets_events(self):
        record = run_program(nested_calls(), seed=0)
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "SubK")
        result = emu.replay(0, info.interval_id, uid_base=777)
        assert all(e.uid >= 777 for e in result.events)

    def test_needs_logged_record(self):
        record = run_program(nested_calls(), seed=0, mode="plain")
        with pytest.raises(ValueError):
            EmulationPackage(record)


class TestParallelReplay:
    def test_sync_prelog_restores_shared_values(self):
        """Replaying foo3's worker sees the same SV as the original run even
        though the other process mutated it — the sync prelog supplies it."""
        record = run_program(fig53_program(), seed=1)
        assert record.failure is None
        emu = EmulationPackage(record)
        retvals = []
        for pid, name in record.process_names.items():
            if name != "worker":
                continue
            index = build_interval_index(record.logs[pid])
            foo3 = next(
                (i for i in index.values() if i.proc_name == "foo3"), None
            )
            if foo3 is None:
                continue
            result = emu.replay(pid, foo3.interval_id)
            assert not result.halted, result.diagnostics
            retvals.append(result.retval)
        # worker(0,0) takes the P/V branch (a+b = 3); worker(1,1) takes the
        # q branch (a becomes 2, so 2+2 = 4).
        assert sorted(retvals) == [3, 4]

    def test_replay_final_shared_matches_postlog(self):
        """For shared variables the interval itself wrote last, the replay's
        final value matches the recorded postlog.  (Values written by
        *other* processes after our last sync point legitimately differ —
        the postlog snapshots global state, the replay is single-process.)"""
        record = run_program(fig53_program(), seed=1)
        emu = EmulationPackage(record)
        checked = 0
        for pid, name in record.process_names.items():
            index = build_interval_index(record.logs[pid])
            for info in index.values():
                if info.is_open or info.proc_name != "foo3":
                    continue
                postlog = record.logs[pid].entries[info.end_index]
                result = emu.replay(pid, info.interval_id)
                wrote = {
                    e.var for e in result.events if e.kind == "stmt" and e.var
                }
                for var, value in postlog.values.items():
                    if var in wrote:
                        assert result.final_shared[var] == value
                        checked += 1
        assert checked >= 1  # the P/V-branch worker writes SV

    def test_replay_every_closed_interval_cleanly(self):
        """Replay robustness: every closed interval of a race-free parallel
        run replays without divergence diagnostics."""
        record = run_program(bank_safe(2, 3), seed=7)
        emu = EmulationPackage(record)
        total = 0
        for pid, log in record.logs.items():
            for info in build_interval_index(log).values():
                if info.is_open:
                    continue
                result = emu.replay(pid, info.interval_id, uid_base=total * 10_000)
                assert not [d for d in result.diagnostics if "divergence" in d], (
                    pid,
                    info.proc_name,
                    result.diagnostics,
                )
                total += 1
        assert total >= 3  # main + two depositors

    def test_recv_values_replayed(self):
        record = run_program(bank_safe(2, 2), seed=5)
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "main")
        result = emu.replay(0, info.interval_id)
        assert result.output == ["balance = 4"]


class TestWhatIfOverrides:
    def test_modified_arg_changes_result(self):
        record = run_program(nested_calls(), seed=0)
        emu = EmulationPackage(record)
        info = interval_of(record, 0, "SubK")
        modified = emu.replay(0, info.interval_id, prelog_overrides={"n": 3})
        assert modified.retval == 3  # 0+1+2
