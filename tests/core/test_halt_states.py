"""Replay behaviour for processes halted in unusual states.

When one process fails, the others stop wherever they are — possibly
blocked on a semaphore or a receive, possibly mid-computation.  Their open
intervals must replay to exactly those points (§5.7's consistent-state
story) without crashing or overrunning.
"""

from repro import compile_program, Machine, PPDSession
from repro.core import EmulationPackage
from repro.runtime import innermost_open_interval, run_program


class TestHaltedWhileBlocked:
    def test_replay_stops_at_blocking_p(self):
        """P1 is blocked on P(gate) forever; P0 fails an assert.  Replaying
        P1's open interval stops at the P operation (its SyncLog was never
        written)."""
        source = """
sem gate = 0;
shared int progress;
proc waiter() {
    progress = 1;
    P(gate);
    progress = 2;
}
proc main() {
    spawn waiter();
    while (progress < 1) {
        int spin = 0;
    }
    assert(false);
}
"""
        record = run_program(source, seed=1)
        assert record.failure is not None
        waiter_pid = next(
            pid for pid, name in record.process_names.items() if name == "waiter"
        )
        open_info = innermost_open_interval(record.logs[waiter_pid])
        assert open_info is not None
        result = EmulationPackage(record).replay(waiter_pid, open_info.interval_id)
        assert result.halted
        # The replay saw the write of progress=1 but never progress=2.
        values = [e.value for e in result.events if e.var == "progress"]
        assert values == [1]

    def test_replay_stops_at_blocking_recv(self):
        source = """
chan never;
shared int mark;
proc consumer() {
    mark = 7;
    int v = recv(never);
    mark = v;
}
proc main() {
    spawn consumer();
    while (mark != 7) {
        int spin = 0;
    }
    assert(false);
}
"""
        record = run_program(source, seed=2)
        consumer_pid = next(
            pid for pid, name in record.process_names.items() if name == "consumer"
        )
        open_info = innermost_open_interval(record.logs[consumer_pid])
        result = EmulationPackage(record).replay(consumer_pid, open_info.interval_id)
        assert result.halted
        values = [e.value for e in result.events if e.var == "mark"]
        assert values == [7]

    def test_session_on_every_halted_process(self):
        """A session can start from any process of a halted run, not just
        the failing one."""
        source = """
sem gate = 0;
proc stuck() { P(gate); }
proc main() {
    spawn stuck();
    int z = 0;
    int boom = 1 / z;
}
"""
        record = run_program(source, seed=0)
        assert record.failure is not None
        session = PPDSession(record)
        for pid in record.process_names:
            result = session.start(pid=pid)
            assert result.events is not None

    def test_deadlocked_run_replays_all_processes(self):
        source = """
sem a = 1;
sem b = 1;
proc one() { P(a); P(b); V(b); V(a); }
proc two() { P(b); P(a); V(a); V(b); }
proc main() { spawn one(); spawn two(); join(); }
"""
        compiled = compile_program(source)
        record = None
        for seed in range(40):
            candidate = Machine(compiled, seed=seed, mode="logged").run()
            if candidate.deadlock is not None:
                record = candidate
                break
        assert record is not None
        emulation = EmulationPackage(record)
        for pid, log in record.logs.items():
            open_info = innermost_open_interval(log)
            if open_info is None:
                continue
            result = emulation.replay(pid, open_info.interval_id)
            assert result.halted

    def test_open_interval_chain_nested_calls(self):
        """Failure deep in a call chain: every enclosing interval is open;
        the innermost replays to the failure, outer ones stop at the call."""
        source = """
func int inner(int x) {
    int bad = 0;
    return x / bad;
}
func int outer(int x) {
    int pre = x + 1;
    return inner(pre);
}
proc main() {
    int r = outer(3);
    print(r);
}
"""
        record = run_program(source, seed=0)
        assert record.failure is not None
        session = PPDSession(record)
        result = session.start()
        assert result.halted
        assert "division by zero" in result.failure_message
        # The failing frame is inner's interval.
        info = session.emulation.interval_info(0, result.interval_id)
        assert info.proc_name == "inner"
