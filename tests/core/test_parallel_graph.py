"""Parallel dynamic graph tests (§6.1, Fig 6.1) — E6."""

import pytest

from repro import compile_program, Machine, ParallelDynamicGraph
from repro.runtime import run_program
from repro.workloads import bank_race, fig61_program


@pytest.fixture(scope="module")
def fig61_graph():
    record = Machine(compile_program(fig61_program()), seed=1).run()
    return record, ParallelDynamicGraph.from_history(record.history)


class TestFig61:
    def test_node_inventory(self, fig61_graph):
        record, graph = fig61_graph
        p1 = next(pid for pid, n in record.process_names.items() if n == "p1")
        ops = [node.op for node in graph.nodes_of(p1)]
        # begin, blocking send (n3), unblock (n5), send(done), end.
        assert ops == ["begin", "send", "unblock", "send", "end"]

    def test_blocking_send_produces_unblock_edge(self, fig61_graph):
        record, graph = fig61_graph
        labels = [e.label for e in graph.sync_edges]
        assert "unblock" in labels
        assert "msg" in labels
        assert "spawn" in labels

    def test_zero_event_internal_edge(self, fig61_graph):
        """Fig 6.1's e4: the sender's edge from send to unblock contains
        zero events (the sender is suspended throughout)."""
        record, graph = fig61_graph
        p1 = next(pid for pid, n in record.process_names.items() if n == "p1")
        edges = graph.edges_of(p1)
        send_to_unblock = next(
            e
            for e in edges
            if graph.node(e.start_uid).op == "send"
            and e.end_uid is not None
            and graph.node(e.end_uid).op == "unblock"
        )
        assert send_to_unblock.is_empty

    def test_msg_edge_connects_processes(self, fig61_graph):
        record, graph = fig61_graph
        msg_edges = [e for e in graph.sync_edges if e.label == "msg"]
        for edge in msg_edges:
            assert graph.node(edge.src_uid).pid != graph.node(edge.dst_uid).pid


class TestOrdering:
    def test_same_process_edges_ordered(self, fig61_graph):
        _, graph = fig61_graph
        for pid in {e.pid for e in graph.internal_edges}:
            edges = graph.edges_of(pid)
            for first, second in zip(edges, edges[1:]):
                assert graph.edge_ordered(first, second)
                assert not graph.edge_ordered(second, first)

    def test_cross_process_causality_through_message(self, fig61_graph):
        record, graph = fig61_graph
        p1 = next(pid for pid, n in record.process_names.items() if n == "p1")
        p2 = next(pid for pid, n in record.process_names.items() if n == "p2")
        # P1's pre-send edge is ordered before P2's post-receive edge.
        p1_first = graph.edges_of(p1)[0]
        p2_after_recv = next(
            e for e in graph.edges_of(p2) if graph.node(e.start_uid).op == "recv"
        )
        assert graph.edge_ordered(p1_first, p2_after_recv)

    def test_simultaneous_detection(self, fig61_graph):
        record, graph = fig61_graph
        # P3 runs unsynchronised with P1's SV write: its read edge is
        # simultaneous with P1's first edge.
        p1 = next(pid for pid, n in record.process_names.items() if n == "p1")
        p3 = next(pid for pid, n in record.process_names.items() if n == "p3")
        p1_write_edge = next(e for e in graph.edges_of(p1) if "SV" in e.writes)
        p3_read_edge = next(e for e in graph.edges_of(p3) if "SV" in e.reads)
        assert graph.simultaneous(p1_write_edge, p3_read_edge)

    def test_simultaneity_is_irreflexive(self, fig61_graph):
        _, graph = fig61_graph
        for edge in graph.internal_edges:
            assert not graph.simultaneous(edge, edge)

    def test_concurrent_pairs_symmetry(self, fig61_graph):
        _, graph = fig61_graph
        pairs = graph.concurrent_pairs()
        for e1, e2 in pairs:
            assert graph.simultaneous(e2, e1)

    def test_read_write_sets_recorded(self, fig61_graph):
        record, graph = fig61_graph
        p1 = next(pid for pid, n in record.process_names.items() if n == "p1")
        writes = set()
        for edge in graph.edges_of(p1):
            writes |= edge.writes
        assert writes == {"SV"}


class TestAgainstRacyWorkload:
    def test_racy_edges_are_simultaneous(self):
        record = run_program(bank_race(2, 2), seed=3)
        graph = ParallelDynamicGraph.from_history(record.history)
        depositor_edges = [
            e for e in graph.internal_edges if "balance" in e.writes
        ]
        assert len(depositor_edges) >= 2
        e1, e2 = depositor_edges[0], depositor_edges[1]
        if e1.pid != e2.pid:
            assert graph.simultaneous(e1, e2)
