"""PPD Controller (session) tests: the §3.2.3 debugging-phase loop."""

import pytest

from repro import compile_program, Machine, PPDSession
from repro.core import SUBGRAPH
from repro.runtime import run_program
from repro.workloads import (
    bank_race,
    buggy_average,
    fib_recursive,
    fig53_program,
    nested_calls,
)


def session_for(source, seed=0, inputs=None):
    record = run_program(source, seed=seed, inputs=inputs)
    return PPDSession(record)


class TestSessionStart:
    def test_start_replays_failing_interval(self):
        session = session_for(buggy_average(5), inputs=[10, 20, 30, 40, 50])
        result = session.start()
        assert result.halted
        assert session.record.failure is not None
        assert session.failure_event() is not None

    def test_start_on_successful_run_replays_root(self):
        session = session_for(nested_calls())
        result = session.start()
        assert not result.halted
        assert result.pid == 0
        assert session.replay_count() == 1

    def test_start_specific_pid(self):
        session = session_for(fig53_program(), seed=1)
        result = session.start(pid=1)
        assert result.pid == 1

    def test_repeated_expansion_is_cached(self):
        session = session_for(nested_calls())
        first = session.start()
        again = session.expand_interval(0, first.interval_id)
        assert again is first
        assert session.replay_count() == 1


class TestIncrementalExpansion:
    def test_subgraph_expansion_adds_detail(self):
        session = session_for(nested_calls())
        session.start()
        subgraphs = [
            n
            for n in session.graph.nodes.values()
            if n.kind == SUBGRAPH and n.interval_id is not None
        ]
        assert subgraphs  # SubJ is unexpanded initially
        before = len(session.graph.nodes)
        session.expand_subgraph(subgraphs[0].uid)
        assert len(session.graph.nodes) > before

    def test_expansion_registered(self):
        session = session_for(nested_calls())
        session.start()
        node = next(
            n
            for n in session.graph.nodes.values()
            if n.kind == SUBGRAPH and n.interval_id is not None
        )
        session.expand_subgraph(node.uid)
        assert node.uid in session.graph.expansions
        assert session.graph.expansions[node.uid]

    def test_expanding_non_subgraph_raises(self):
        session = session_for(nested_calls())
        result = session.start()
        plain = next(
            n for n in session.graph.nodes.values() if n.kind == "singular"
        )
        with pytest.raises(ValueError):
            session.expand_subgraph(plain.uid)

    def test_incremental_tracing_generates_fewer_events_than_full(self):
        """The headline property: a session that answers one query touches
        far fewer events than exist in the whole execution."""
        compiled = compile_program(fib_recursive(12))
        record = Machine(compiled, seed=0, mode="logged").run()
        session = PPDSession(record)
        session.start()
        # One replay: only the root fib's own events, not the whole tree.
        full = Machine(compiled, seed=0, mode="plain", trace=True).run()
        assert session.events_generated < len(full.tracer.events) / 10

    def test_flowback_expanding_stays_within_budget(self):
        session = session_for(fib_recursive(8))
        result = session.start()
        root = session.last_event(0)
        before = session.replay_count()
        session.flowback_expanding(root.uid, max_depth=6, budget=3)
        assert session.replay_count() - before <= 3


class TestCrossProcess:
    def test_extern_resolution_names_the_writer(self):
        """§5.6: SV imported by the reading process resolves to the process
        that wrote it."""
        source = """
shared int SV;
sem ready = 0;
chan out;
proc writer() { SV = 123; V(ready); }
proc reader() { P(ready); int x = SV + 1; send(out, x); }
proc main() {
    spawn writer();
    spawn reader();
    int r = recv(out);
    join();
    print(r);
    assert(r == 0);
}
"""
        record = run_program(source, seed=2)
        assert record.failure is not None  # r == 124, assert fires
        session = PPDSession(record)
        # Replay the reader to materialise its extern import of SV.
        reader_pid = next(
            pid for pid, name in record.process_names.items() if name == "reader"
        )
        result = session.expand_interval(
            reader_pid,
            next(iter(session.emulation.indexes[reader_pid])),
        )
        externs = [e for e in result.externs if e.var == "SV"]
        assert externs
        resolution = session.resolve_extern(externs[0].event_uid, chase=True)
        assert resolution.candidates
        writer_pid = next(
            pid for pid, name in record.process_names.items() if name == "writer"
        )
        assert resolution.candidates[0].pid == writer_pid
        assert not resolution.is_race
        assert resolution.writer_node is not None
        assert resolution.writer_node.label.startswith("SV")

    def test_extern_resolution_flags_race(self):
        record = run_program(bank_race(2, 2), seed=3)
        session = PPDSession(record)
        races = session.races()
        assert not races.is_race_free
        assert any(r.variable == "balance" for r in races.races)

    def test_races_on_variable(self):
        record = run_program(bank_race(2, 2), seed=3)
        session = PPDSession(record)
        assert session.races_on("balance")
        assert not session.races_on("nonexistent")
