"""Replay behaviour in the presence of races (§5.5).

"If there exists a race condition in an execution instance of a program,
even though the log entries are not valid, we can detect and show the
causes of the race condition."

These tests pin that contract: replays of racy executions never crash the
debugger (they complete, possibly with divergence diagnostics), and race
detection works regardless — it reads the parallel dynamic graph, not the
replayed values.
"""

from repro import compile_program, Machine
from repro.core import EmulationPackage, find_races_indexed
from repro.runtime import build_interval_index
from repro.workloads import bank_race


def _replay_everything(record):
    emulation = EmulationPackage(record)
    results = []
    base = 0
    for pid, log in record.logs.items():
        for info in build_interval_index(log).values():
            result = emulation.replay(pid, info.interval_id, uid_base=base)
            base += len(result.events) + 1
            results.append(result)
    return results


class TestRacyReplay:
    def test_replay_never_crashes_on_racy_logs(self):
        compiled = compile_program(bank_race(3, 3))
        for seed in range(8):
            record = Machine(compiled, seed=seed, mode="logged").run()
            results = _replay_everything(record)
            assert results  # every interval produced a result object

    def test_race_detected_even_when_replay_diverges(self):
        compiled = compile_program(bank_race(2, 3))
        for seed in range(8):
            record = Machine(compiled, seed=seed, mode="logged").run()
            _replay_everything(record)  # must not throw
            scan = find_races_indexed(record.history)
            assert any(race.variable == "balance" for race in scan.races)

    def test_racy_depositor_replay_uses_its_own_reads(self):
        """The depositor's balance reads come straight from shared memory
        (no sync prelog guards them — that *is* the race), so the replay
        sees the prelog-time value; the detector flags why that may be
        invalid."""
        compiled = compile_program(bank_race(2, 1))
        record = Machine(compiled, seed=3, mode="logged").run()
        emulation = EmulationPackage(record)
        for pid, name in record.process_names.items():
            if name != "depositor":
                continue
            info = next(iter(build_interval_index(record.logs[pid]).values()))
            result = emulation.replay(pid, info.interval_id)
            # The replay completes and produces the depositor's events.
            assert any(e.var == "balance" for e in result.events if e.kind == "stmt")

    def test_failed_assert_reproduced_by_replay(self):
        """When the race manifests (lost update -> failed assert), replaying
        main's open interval reproduces the failing assertion."""
        compiled = compile_program(bank_race(2, 3))
        record = None
        for seed in range(20):
            candidate = Machine(compiled, seed=seed, mode="logged").run()
            if candidate.failure is not None:
                record = candidate
                break
        assert record is not None, "race never manifested in 20 seeds"
        emulation = EmulationPackage(record)
        from repro.runtime import innermost_open_interval

        open_info = innermost_open_interval(record.logs[record.failure.pid])
        result = emulation.replay(record.failure.pid, open_info.interval_id)
        assert result.halted
        assert "assertion failed" in result.failure_message
