"""Access-history query tests (§6.3's investigation pattern)."""

from repro.core import PPDCommandLine, access_history
from repro.runtime import run_program
from repro.workloads import bank_race, bank_safe, fig61_program


class TestAccessHistory:
    def test_ordered_accesses_reported_clean(self):
        record = run_program(bank_safe(2, 2), seed=1)
        history = access_history(record.history, "balance")
        assert history.accesses
        assert not history.has_unordered_conflict
        assert "totally ordered" in history.describe() or "none conflict" in history.describe()

    def test_racy_accesses_flagged(self):
        record = run_program(bank_race(2, 2), seed=3)
        history = access_history(record.history, "balance")
        assert history.has_unordered_conflict
        assert "RACE" in history.describe()

    def test_observed_order_is_by_timestamp(self):
        record = run_program(bank_safe(2, 2), seed=1)
        history = access_history(record.history, "balance")
        seg_ids = [a.seg_id for a in history.accesses]
        starts = [
            record.history.nodes[a.edge.start_uid].timestamp for a in history.accesses
        ]
        assert starts == sorted(starts)
        assert len(set(seg_ids)) == len(seg_ids)

    def test_concurrency_annotations_symmetric(self):
        record = run_program(fig61_program(), seed=1)
        history = access_history(record.history, "SV")
        by_id = {a.seg_id: a for a in history.accesses}
        for access in history.accesses:
            for other_id in access.concurrent_with:
                assert access.seg_id in by_id[other_id].concurrent_with

    def test_kinds(self):
        record = run_program(fig61_program(), seed=1)
        history = access_history(record.history, "SV")
        kinds = {a.kind for a in history.accesses}
        assert "write" in kinds
        assert "read" in kinds

    def test_unknown_variable_empty(self):
        record = run_program(bank_safe(2, 2), seed=1)
        assert access_history(record.history, "ghost").accesses == []

    def test_writers_property(self):
        record = run_program(bank_race(2, 1), seed=0)
        history = access_history(record.history, "balance")
        assert all(a.writes for a in history.writers)
        assert len(history.writers) >= 2


class TestCliHistory:
    def test_history_command(self):
        record = run_program(bank_race(2, 2), seed=3)
        cli = PPDCommandLine(record)
        out = cli.execute("history balance")
        assert "access history" in out
        assert "RACE" in out

    def test_history_usage(self):
        record = run_program(bank_safe(2, 1), seed=0)
        cli = PPDCommandLine(record)
        assert "usage" in cli.execute("history")
        assert "no recorded accesses" in cli.execute("history ghost")
