"""Cross-process dependence resolution tests (§5.6, §6.3)."""

from repro import PPDSession
from repro.analysis import N_SYNC, build_simplified_graph, check_program, compute_summaries
from repro.lang import parse
from repro.runtime import run_program


def session_with_reader_replayed(source, seed, reader_name="reader"):
    record = run_program(source, seed=seed)
    session = PPDSession(record)
    reader_pid = next(
        pid for pid, name in record.process_names.items() if name == reader_name
    )
    interval_id = next(iter(session.emulation.indexes[reader_pid]))
    result = session.expand_interval(reader_pid, interval_id)
    return record, session, result


ORDERED = """
shared int SV;
sem ready = 0;
chan out;
proc writer() { SV = 7; V(ready); }
proc reader() { P(ready); int x = SV; send(out, x); }
proc main() { spawn writer(); spawn reader(); int r = recv(out); join(); print(r); }
"""

AMBIGUOUS = """
shared int SV;
sem ready = 0;
chan out;
proc writer() { SV = 7; V(ready); }
proc interloper() { SV = 8; }
proc reader() { P(ready); int x = SV; send(out, x); }
proc main() {
    spawn writer();
    spawn interloper();
    spawn reader();
    int r = recv(out);
    join();
    print(r);
}
"""


class TestExternResolution:
    def test_unique_writer_resolved(self):
        record, session, result = session_with_reader_replayed(ORDERED, seed=2)
        extern = next(e for e in result.externs if e.var == "SV")
        resolution = session.resolve_extern(extern.event_uid, chase=True)
        assert len(resolution.candidates) == 1
        assert not resolution.is_race
        writer_pid = next(
            pid for pid, name in record.process_names.items() if name == "writer"
        )
        assert resolution.candidates[0].pid == writer_pid
        assert resolution.writer_node is not None
        assert resolution.writer_node.value == 7

    def test_ambiguous_writers_flagged_as_race(self):
        """§6.3: with a second unordered writer 'we cannot tell which of
        the two events happened first; there exists a race condition'."""
        found_ambiguous = False
        for seed in range(12):
            record, session, result = session_with_reader_replayed(AMBIGUOUS, seed=seed)
            externs = [e for e in result.externs if e.var == "SV"]
            if not externs:
                continue
            resolution = session.resolve_extern(externs[0].event_uid)
            if resolution.is_race:
                found_ambiguous = True
                pids = {edge.pid for edge in resolution.candidates}
                assert len(pids) >= 2
                break
        assert found_ambiguous, "no seed produced an ambiguous import"

    def test_unknown_extern_uid_raises(self):
        import pytest

        _, session, _ = session_with_reader_replayed(ORDERED, seed=2)
        with pytest.raises(ValueError):
            session.resolve_extern(999_999)


class TestRendezvousSyncUnits:
    def test_accept_and_reply_are_unit_boundaries(self):
        source = """
entry e;
shared int SV;
proc server() {
    accept e() {
        SV = SV + 1;
        reply SV;
    }
}
proc main() { spawn server(); int r = call e(); join(); }
"""
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        graph = build_simplified_graph(program.proc("server"), table, summaries)
        sync_labels = [
            graph.cfg.nodes[n].label
            for n, kind in graph.node_kinds.items()
            if kind == N_SYNC
        ]
        assert any(label.startswith("accept") for label in sync_labels)
        assert any(label.startswith("reply") for label in sync_labels)
        # The SV access sits in the unit started by the accept.
        accept_node = next(
            n
            for n, kind in graph.node_kinds.items()
            if kind == N_SYNC and graph.cfg.nodes[n].label.startswith("accept")
        )
        unit = graph.unit_at[accept_node]
        assert "SV" in unit.shared_reads

    def test_call_is_unit_boundary_in_caller(self):
        source = """
entry e;
shared int SV;
proc server() { accept e() { reply 1; } }
proc main() {
    spawn server();
    int r = call e();
    int y = SV + r;
    join();
    print(y);
}
"""
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        graph = build_simplified_graph(program.proc("main"), table, summaries)
        call_units = [
            unit
            for unit in graph.units
            if "call e" in graph.cfg.nodes[unit.start_node].label
        ]
        assert call_units
        assert "SV" in call_units[0].shared_reads
