"""Command-line interface tests (§7's user-interface goal)."""

import pytest

from repro import compile_program, Machine
from repro.core import PPDCommandLine
from repro.runtime import run_program
from repro.workloads import bank_race, buggy_average, dining_philosophers, nested_calls


@pytest.fixture()
def cli():
    compiled = compile_program(buggy_average(5))
    record = Machine(
        compiled, seed=0, mode="logged", inputs=[10, 20, 30, 40, 50]
    ).run()
    return PPDCommandLine(record)


class TestBasicCommands:
    def test_where_reports_failure_site(self, cli):
        out = cli.execute("where")
        assert "assertion failed" in out
        assert "s11" in out

    def test_output(self, cli):
        assert "average = 20" in cli.execute("output")

    def test_stats(self, cli):
        out = cli.execute("stats")
        assert "1 replay(s)" in out
        assert "e-block replay(s)" in out
        assert "preemptions" in out
        assert "bytes" in out  # per-process log bytes line

    def test_stats_json(self, cli):
        import json

        report = json.loads(cli.execute("stats json"))
        assert report["debugging"]["replays"] == 1
        assert "0" in report["log"]["per_process"] or 0 in report["log"]["per_process"]
        assert report["execution"]["preemptions"] >= 0

    def test_stats_obs_counters(self, cli):
        from repro import obs

        with obs.capture():
            cli.execute("why average")
            out = cli.execute("stats obs")
        assert "obs counters:" in out
        assert "debug.flowback.queries" in out

    def test_graph_limits_nodes(self, cli):
        out = cli.execute("graph 3")
        assert out.count("[singular]") + out.count("[subgraph]") <= 3

    def test_why_variable(self, cli):
        out = cli.execute("why average")
        assert "total" in out
        assert "[data:" in out

    def test_why_unknown_variable(self, cli):
        out = cli.execute("why nonexistent")
        assert "no assignment" in out

    def test_expandable_then_expand(self, cli):
        listing = cli.execute("expandable")
        assert "readings_sum()" in listing
        uid = int(listing.split(":")[0].lstrip("#"))
        out = cli.execute(f"expand {uid}")
        assert "events regenerated" in out
        assert cli.execute("expandable") == "(nothing to expand)"

    def test_back_and_slice(self, cli):
        failure = cli.session.failure_event()
        out = cli.execute(f"back {failure.uid} 4")
        assert "average" in out
        slice_out = cli.execute(f"slice {failure.uid}")
        assert "s9" in slice_out

    def test_forward(self, cli):
        n_node = cli.session.graph.find_assignments("n")[0]
        out = cli.execute(f"forward {n_node.uid}")
        assert "average" in out

    def test_restore(self, cli):
        out = cli.execute("restore 9999")
        assert "shared memory" in out

    def test_races_on_sequential_program(self, cli):
        assert "race-free" in cli.execute("races")

    def test_help_and_unknown(self, cli):
        assert "flowback" in cli.execute("help")
        assert "unknown command" in cli.execute("bogus")
        assert cli.execute("") == ""

    def test_error_handling(self, cli):
        assert "error:" in cli.execute("back notanumber")
        assert "usage" in cli.execute("why")

    def test_run_script_stops_at_quit(self, cli):
        transcript = cli.run_script(["where", "quit", "output"])
        assert len(transcript) == 2
        assert transcript[-1] == ("quit", "bye")


class TestSaveLoad:
    def test_save_then_load_round_trip(self, cli, tmp_path):
        path = tmp_path / "session.ppd.json"
        why_before = cli.execute("why average")
        assert cli.execute(f"save {path}") == f"saved record to {path}"
        assert path.exists()

        other = PPDCommandLine(run_program(nested_calls(), seed=0))
        out = other.execute(f"load {path}")
        assert out.startswith(f"loaded record from {path}")
        # The loaded session debugs the averaging record now.
        assert "assertion failed" in other.execute("where")
        assert other.execute("why average") == why_before

    def test_save_usage_and_io_error(self, cli, tmp_path):
        assert cli.execute("save") == "usage: save <path>"
        out = cli.execute(f"save {tmp_path}/no/such/dir/x.json")
        assert out.startswith("error:")

    def test_load_usage_and_errors(self, cli, tmp_path):
        assert cli.execute("load") == "usage: load <path>"
        assert cli.execute(f"load {tmp_path}/missing.json").startswith("error:")
        broken = tmp_path / "broken.json"
        broken.write_text("{nope")
        out = cli.execute(f"load {broken}")
        assert out.startswith("error:")
        assert "corrupt" in out

    def test_help_mentions_save_load(self, cli):
        help_text = cli.execute("help")
        assert "save <path>" in help_text
        assert "load <path>" in help_text


class TestParallelCommands:
    def test_races_detected(self):
        record = run_program(bank_race(2, 2), seed=3)
        cli = PPDCommandLine(record)
        out = cli.execute("races")
        assert "balance" in out

    def test_deadlock_command(self):
        compiled = compile_program(dining_philosophers(3))
        for seed in range(40):
            record = Machine(compiled, seed=seed, mode="logged").run()
            if record.deadlock is not None:
                break
        cli = PPDCommandLine(record, autostart=False)
        out = cli.execute("deadlock")
        assert "circular wait" in out
        assert "DEADLOCK" in cli.execute("where")

    def test_parallel_render(self):
        record = run_program(bank_race(2, 1), seed=0)
        cli = PPDCommandLine(record)
        out = cli.execute("parallel")
        assert "parallel dynamic graph" in out

    def test_completed_run_where(self):
        record = run_program(nested_calls(), seed=0)
        cli = PPDCommandLine(record)
        assert "completed normally" in cli.execute("where")
