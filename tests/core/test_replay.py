"""State restoration and what-if tests (§5.7) — E11."""

from repro.core import WhatIf, restore_at_postlog, restore_shared_at
from repro.runtime import Postlog, build_interval_index, run_program
from repro.workloads import bank_safe, fig53_program, nested_calls


class TestRestoration:
    def test_restore_at_end_matches_final_state(self):
        record = run_program(fig53_program(), seed=1)
        state = restore_shared_at(record, record.history.nodes and 10**9 or 0)
        assert state.shared["SV"] == record.shared_final["SV"]

    def test_restore_at_zero_is_initial(self):
        record = run_program(fig53_program(), seed=1)
        state = restore_shared_at(record, 0)
        assert state.shared["SV"] == 10  # declared initial value

    def test_restore_monotone_snapshots(self):
        record = run_program(bank_safe(2, 3), seed=2)
        postlogs = sorted(
            (
                e
                for log in record.logs.values()
                for e in log
                if isinstance(e, Postlog)
            ),
            key=lambda e: e.timestamp,
        )
        values = [
            restore_shared_at(record, p.timestamp).shared["balance"] for p in postlogs
        ]
        assert values == sorted(values)
        assert values[-1] == 6

    def test_restore_at_specific_postlog(self):
        record = run_program(nested_calls(), seed=0)
        index = build_interval_index(record.logs[0])
        main_info = next(i for i in index.values() if i.proc_name == "main")
        state = restore_at_postlog(record, 0, main_info.interval_id)
        assert state.shared["total"] == record.shared_final["total"]

    def test_postlogs_only_mode(self):
        record = run_program(bank_safe(2, 2), seed=1)
        full = restore_shared_at(record, 10**9, use_prelogs=True)
        lean = restore_shared_at(record, 10**9, use_prelogs=False)
        assert full.shared["balance"] == lean.shared["balance"] == 4

    def test_entries_applied_counted(self):
        record = run_program(bank_safe(2, 2), seed=1)
        state = restore_shared_at(record, 10**9)
        assert state.entries_applied > 0


class TestWhatIf:
    def test_modified_prelog_changes_outcome(self):
        record = run_program(nested_calls(), seed=0)
        whatif = WhatIf(record)
        index = build_interval_index(record.logs[0])
        subk = next(i for i in index.values() if i.proc_name == "SubK")
        outcome = whatif.outcome_of_changes(0, subk.interval_id, {"n": 2})
        baseline, modified = outcome.detail
        assert baseline.retval == 10
        assert modified.retval == 1  # 0+1

    def test_unchanged_replay_reports_no_change(self):
        record = run_program(nested_calls(), seed=0)
        whatif = WhatIf(record)
        index = build_interval_index(record.logs[0])
        subk = next(i for i in index.values() if i.proc_name == "SubK")
        outcome = whatif.outcome_of_changes(0, subk.interval_id, {})
        assert not outcome.behavior_changed

    def test_injection_rerun_fixes_failure(self):
        """§5.7's promise: change a value, re-run from the same schedule,
        watch the failure disappear."""
        source = """
proc main() {
    int threshold = 3;
    int x = 10;
    assert(x < threshold);
    print("ok");
}
"""
        record = run_program(source, seed=0)
        assert record.failure is not None
        whatif = WhatIf(record)
        # Before step 3 (the assert), raise the threshold.
        fixed = whatif.rerun_with_injection(0, 3, {"threshold": 50})
        assert fixed.failure is None
        assert fixed.output[0][1] == "ok"

    def test_injection_preserves_interleaving_seed(self):
        record = run_program(bank_safe(2, 2), seed=9)
        whatif = WhatIf(record)
        rerun = whatif.rerun_with_injection(0, 10**9, {})  # never fires
        assert rerun.output == record.output
