"""E3: the dynamic program dependence graph of the paper's Fig 4.1.

The figure shows, at the moment s6 (``a = a + sq``) is about to execute:
singular nodes for a, b, c, d, sq and the predicate ``if (d > 0)``; a
sub-graph node for SubD; direct data edges from the ``a`` and ``b`` nodes
into the sub-graph node; and a *fictional* ``%3`` node for the expression
actual ``a+b+c``.
"""

import pytest

from repro import compile_program, Machine, PPDSession
from repro.core import DATA, PARAM, SINGULAR, SUBGRAPH
from repro.workloads import fig41_program


@pytest.fixture(scope="module")
def session():
    compiled = compile_program(fig41_program())
    record = Machine(compiled, seed=0, mode="logged").run()
    assert record.failure is not None  # assert(a < 0) fails by design
    sess = PPDSession(record)
    sess.start()
    return sess


def node_labelled(graph, fragment):
    matches = [n for n in graph.nodes.values() if fragment in n.label]
    assert matches, f"no node labelled with {fragment!r}"
    return matches[-1]


class TestFig41Structure:
    def test_subgraph_node_for_subd(self, session):
        subd = node_labelled(session.graph, "SubD()")
        assert subd.kind == SUBGRAPH

    def test_fictional_param_node_for_expression_actual(self, session):
        param = node_labelled(session.graph, "%3")
        assert param.kind == PARAM
        # %3 = a + b + c = 12 with a=3, b=4, c=5.
        assert param.value == 12

    def test_name_actuals_feed_subgraph_directly(self, session):
        graph = session.graph
        subd = node_labelled(graph, "SubD()")
        incoming = {e.label for e in graph.edges_into(subd.uid, DATA)}
        assert any(label.startswith("%1") for label in incoming)
        assert any(label.startswith("%2") for label in incoming)
        assert "%3" in incoming

    def test_param_node_collects_expression_reads(self, session):
        graph = session.graph
        param = node_labelled(graph, "%3")
        sources = {graph.nodes[e.src].label for e in graph.edges_into(param.uid, DATA)}
        # a, b, and c assignments all flow into the fictional node.
        assert any(label.startswith("a ") for label in sources)
        assert any(label.startswith("b ") for label in sources)
        assert any(label.startswith("c ") for label in sources)

    def test_d_depends_on_call_result(self, session):
        graph = session.graph
        d_node = node_labelled(graph, "d s")
        parents = graph.data_parents(d_node.uid)
        assert any(node.kind == SUBGRAPH for node, _ in parents)

    def test_sq_control_dependent_on_predicate(self, session):
        graph = session.graph
        sq_node = node_labelled(graph, "sq s")
        parent = graph.control_parent(sq_node.uid)
        assert parent is not None
        assert "(d > 0)" in parent.label

    def test_s6_a_depends_on_a_and_sq(self, session):
        graph = session.graph
        # s6 is the second assignment to a: "a = a + sq".
        assignments = graph.find_assignments("a")
        final = assignments[-1]
        parent_vars = {var for _, var in graph.data_parents(final.uid)}
        assert "sq" in parent_vars
        assert "a" in parent_vars

    def test_subgraph_value_is_returned_value(self, session):
        # SubD(3, 4, 12) = 3*4 - 12 = 0.
        subd = node_labelled(session.graph, "SubD()")
        assert subd.value == 0

    def test_flowback_from_failure_reaches_subd(self, session):
        failure = session.failure_event()
        assert failure is not None
        tree = session.flowback(failure.uid, max_depth=10)
        assert tree.reaches(lambda n: n.kind == SUBGRAPH)
        assert tree.reaches(lambda n: n.label.startswith("sq"))

    def test_singular_nodes_have_values(self, session):
        d_node = node_labelled(session.graph, "d s")
        assert d_node.kind == SINGULAR
        assert d_node.value == 0

    def test_predicate_outcome_recorded(self, session):
        pred = node_labelled(session.graph, "(d > 0)")
        assert pred.value is False  # d == 0 takes the else branch
