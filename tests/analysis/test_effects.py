"""Static effect analysis (repro.analysis.effects): the LOCAL/SHARED/SYNC
classification, elidability pinning, interprocedural summaries, shared-site
superset soundness against the AST race-candidate walk, and caching."""

from __future__ import annotations

import pytest

from repro import compile_program, obs
from repro.analysis.effects import LOCAL, SHARED, SYNC, analyze_program, effect_max
from repro.analysis.racecands import collect_access_sites
from repro.workloads import (
    bank_race,
    bank_safe,
    buggy_average,
    compute_heavy,
    dining_philosophers,
    fig41_program,
    fig61_program,
    matrix_sum,
    producer_consumer,
)

SOURCE = """\
shared int total;
sem gate = 1;

proc main() {
    int k = 0;
    k = k + 1;
    P(gate);
    total = total + k;
    V(gate);
    print(k);
}
"""


@pytest.fixture(scope="module")
def effects():
    return compile_program(SOURCE).vm_code().effects()


def by_label(effects, proc="main"):
    return {stmt.stmt_label: stmt for stmt in effects.procs[proc].stmts}


def test_lattice_order():
    assert effect_max(LOCAL, SHARED) == SHARED
    assert effect_max(SHARED, SYNC) == SYNC
    assert effect_max(LOCAL, LOCAL) == LOCAL
    assert effect_max(SYNC, LOCAL) == SYNC


def test_statement_classification(effects):
    stmts = by_label(effects)
    assert stmts["s1"].effect == LOCAL  # int k = 0
    assert stmts["s2"].effect == LOCAL  # k = k + 1
    assert stmts["s3"].effect == SYNC  # P(gate)
    assert stmts["s4"].effect == SHARED  # total = total + k
    assert stmts["s5"].effect == SYNC  # V(gate)


def test_local_spans_are_elidable_sync_and_shared_are_not(effects):
    stmts = by_label(effects)
    assert stmts["s1"].elidable and stmts["s2"].elidable
    assert not stmts["s3"].elidable
    assert not stmts["s4"].elidable
    assert not stmts["s5"].elidable


def test_terminal_statements_stay_pinned():
    """print/return spans are LOCAL but not elidable: the span ends the
    frame or can block, so its PRE yield must survive fusion."""
    effects = compile_program(SOURCE).vm_code().effects()
    stmts = by_label(effects)
    assert stmts["s6"].effect == LOCAL  # print(k)
    assert not stmts["s6"].elidable


def test_shared_sites_use_racecands_identity(effects):
    """(proc, node_id, var, write): statement node for the write, the
    reading expression's node for the read."""
    sites = effects.shared_sites
    writes = {s for s in sites if s[3]}
    reads = {s for s in sites if not s[3]}
    assert {(p, v) for p, _, v, _ in writes} == {("main", "total")}
    assert {(p, v) for p, _, v, _ in reads} == {("main", "total")}
    (write,) = writes
    (read,) = reads
    assert write[1] != read[1]


def test_interprocedural_summaries_propagate_through_calls():
    source = """\
shared int n;

func int bump(int x) {
    n = n + x;
    return n;
}

func int pure(int x) {
    return x * 2;
}

proc main() {
    int a = pure(3);
    int b = bump(a);
    print(a + b);
}
"""
    effects = compile_program(source).vm_code().effects()
    assert effects.summaries["pure"] == LOCAL
    assert effects.summaries["bump"] == SHARED
    # A call to a SHARED function makes the calling statement SHARED.
    labels = by_label(effects)
    assert labels["s4"].effect == LOCAL  # a = pure(3)
    assert labels["s5"].effect == SHARED  # b = bump(a)


def test_owner_of_maps_statements_to_procedures(effects):
    for stmt in effects.procs["main"].stmts:
        assert effects.owner_of(stmt.node_id) == "main"
    assert effects.owner_of(10 ** 9) is None


@pytest.mark.parametrize(
    "source",
    [
        bank_race(2, 2),
        bank_safe(2, 2),
        buggy_average(5),
        compute_heavy(3, 4),
        dining_philosophers(3),
        fig41_program(),
        fig61_program(),
        matrix_sum(4),
        producer_consumer(3, 1),
    ],
    ids=lambda s: s.strip().splitlines()[0][:24],
)
def test_shared_sites_superset_of_ast_access_sites(source):
    """Superset soundness: every shared access the AST race-candidate
    walk collects is also classified SHARED by the bytecode analysis —
    the containment refine_with_effects relies on to prune safely."""
    compiled = compile_program(source)
    effects = compiled.vm_code().effects()
    ast_sites = {
        (site.proc, site.node_id, site.var, site.write)
        for site in collect_access_sites(compiled.program, compiled.table)
    }
    missing = ast_sites - set(effects.shared_sites)
    assert not missing, sorted(missing)


def test_effects_cached_on_program_code():
    compiled = compile_program(SOURCE)
    assert compiled.vm_code().effects() is compiled.vm_code().effects()


def test_analyze_program_emits_obs_counters():
    compiled = compile_program(SOURCE)
    with obs.capture() as registry:
        analyze_program(compiled)
    snapshot = registry.snapshot()
    assert snapshot["analysis.effects.programs"] == 1
    counts = compiled.vm_code().effects().counts()
    assert snapshot["analysis.effects.local"] == counts[LOCAL]
    assert snapshot["analysis.effects.shared"] == counts[SHARED]
    assert snapshot["analysis.effects.sync"] == counts[SYNC]
