"""Post-dominance and control-dependence tests."""

from repro.lang import parse
from repro.analysis import build_cfg, control_dependence, immediate_postdominators, postdominators
from repro.analysis.cfg import PRED, STMT


def cfg_of(body: str):
    program = parse("proc main() {\n" + body + "\n}")
    return build_cfg(program.proc("main"))


def stmt_node(cfg, text_fragment):
    for node in cfg.nodes.values():
        if node.kind in (STMT, PRED) and text_fragment in node.label:
            return node.id
    raise AssertionError(f"no CFG node labelled with {text_fragment!r}")


class TestPostdominators:
    def test_exit_postdominates_everything(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; }")
        pdom = postdominators(cfg)
        for node in cfg.nodes:
            assert cfg.exit in pdom[node]

    def test_straight_line_chain(self):
        cfg = cfg_of("int a = 1; int b = 2;")
        pdom = postdominators(cfg)
        a = stmt_node(cfg, "int a")
        b = stmt_node(cfg, "int b")
        assert b in pdom[a]
        assert a not in pdom[b]

    def test_branch_arms_do_not_postdominate_predicate(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } else { a = 3; } print(a);")
        pdom = postdominators(cfg)
        pred = stmt_node(cfg, "if")
        then_arm = stmt_node(cfg, "a = 2")
        join = stmt_node(cfg, "print")
        assert then_arm not in pdom[pred]
        assert join in pdom[pred]

    def test_immediate_postdominator_of_predicate_is_join(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } else { a = 3; } print(a);")
        ipdom = immediate_postdominators(cfg)
        pred = stmt_node(cfg, "if")
        join = stmt_node(cfg, "print")
        assert ipdom[pred] == join


class TestControlDependence:
    def test_then_branch_depends_on_predicate(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } print(a);")
        deps = control_dependence(cfg)
        pred = stmt_node(cfg, "if")
        then_arm = stmt_node(cfg, "a = 2")
        assert (pred, "true") in deps[then_arm]

    def test_else_branch_label(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } else { a = 3; }")
        deps = control_dependence(cfg)
        pred = stmt_node(cfg, "if")
        else_arm = stmt_node(cfg, "a = 3")
        assert (pred, "false") in deps[else_arm]

    def test_join_point_not_control_dependent(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } print(a);")
        deps = control_dependence(cfg)
        join = stmt_node(cfg, "print")
        pred = stmt_node(cfg, "if")
        assert all(src != pred for src, _ in deps[join])

    def test_while_body_depends_on_loop_predicate(self):
        cfg = cfg_of("int a = 0; while (a < 3) { a = a + 1; }")
        deps = control_dependence(cfg)
        pred = stmt_node(cfg, "while")
        body = stmt_node(cfg, "a = (a + 1)")
        assert (pred, "true") in deps[body]

    def test_while_predicate_depends_on_itself(self):
        # Classic result: a loop predicate is control dependent on itself
        # (executing the body re-reaches the test).
        cfg = cfg_of("int a = 0; while (a < 3) { a = a + 1; }")
        deps = control_dependence(cfg)
        pred = stmt_node(cfg, "while")
        assert (pred, "true") in deps[pred]

    def test_nested_if_chain(self):
        cfg = cfg_of(
            "int a = 1;\n"
            "if (a > 0) {\n"
            "    if (a > 1) { a = 9; }\n"
            "}"
        )
        deps = control_dependence(cfg)
        outer = stmt_node(cfg, "(a > 0)")
        inner = stmt_node(cfg, "(a > 1)")
        target = stmt_node(cfg, "a = 9")
        assert (outer, "true") in deps[inner]
        assert (inner, "true") in deps[target]
        # The innermost statement depends directly on the inner predicate
        # only; transitivity goes through the chain.
        assert all(src != outer for src, _ in deps[target])

    def test_straight_line_has_no_control_deps(self):
        cfg = cfg_of("int a = 1; int b = 2;")
        deps = control_dependence(cfg)
        a = stmt_node(cfg, "int a")
        b = stmt_node(cfg, "int b")
        assert deps[a] == [] and deps[b] == []
