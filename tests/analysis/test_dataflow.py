"""USED/DEFINED sets and reaching-definitions tests (§5.1's machinery)."""

from repro.lang import ast, parse
from repro.analysis import (
    build_cfg,
    check_program,
    compute_summaries,
    reaching_definitions,
    region_declared,
    region_use_def,
    stmt_defs,
    stmt_uses,
)


def setup(source):
    program = parse(source)
    table = check_program(program)
    summaries = compute_summaries(program, table)
    return program, table, summaries


def main_stmt(program, index):
    return program.proc("main").body.body[index]


class TestStmtUseDef:
    def test_assign_uses_rhs_and_index(self):
        program, _, summaries = setup(
            "proc main() { int a[3]; int i = 0; int b = 1; a[i] = b + 2; }"
        )
        stmt = main_stmt(program, 3)
        assert stmt_uses(stmt, summaries) == {"i", "b"}
        assert stmt_defs(stmt, summaries) == {"a"}

    def test_self_assignment_reads_and_writes(self):
        program, _, summaries = setup("proc main() { int x = 0; x = x + 1; }")
        stmt = main_stmt(program, 1)
        assert stmt_uses(stmt, summaries) == {"x"}
        assert stmt_defs(stmt, summaries) == {"x"}

    def test_predicate_uses(self):
        program, _, summaries = setup("proc main() { int a = 1; if (a > 0) { a = 2; } }")
        stmt = main_stmt(program, 1)
        assert stmt_uses(stmt, summaries) == {"a"}
        assert stmt_defs(stmt, summaries) == set()

    def test_call_adds_callee_shared_effects(self):
        program, _, summaries = setup(
            """
shared int SV;
func int f(int x) { SV = SV + x; return SV; }
proc main() { int y = f(3); }
"""
        )
        stmt = main_stmt(program, 0)
        assert "SV" in stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"y", "SV"}

    def test_print_uses(self):
        program, _, summaries = setup("proc main() { int a = 1; print(a, a + 1); }")
        assert stmt_uses(main_stmt(program, 1), summaries) == {"a"}

    def test_send_uses_value(self):
        program, _, summaries = setup("chan c;\nproc main() { int a = 1; send(c, a * 2); }")
        assert stmt_uses(main_stmt(program, 1), summaries) == {"a"}

    def test_spawn_uses_args(self):
        program, _, summaries = setup(
            "proc w(int n) { }\nproc main() { int a = 1; spawn w(a + 1); join(); }"
        )
        assert stmt_uses(main_stmt(program, 1), summaries) == {"a"}


class TestRegionSets:
    def test_region_aggregates(self):
        program, _, summaries = setup(
            """
proc main() {
    int s = 0;
    for (i = 0; i < 10; i = i + 1) {
        s = s + i;
    }
    print(s);
}
"""
        )
        loop = main_stmt(program, 1)
        stmts = [s for s in ast.walk_statements(loop) if not isinstance(s, ast.Block)]
        used, defined = region_use_def(stmts, summaries)
        assert used == {"s", "i"}
        assert defined == {"s", "i"}

    def test_region_declared(self):
        program, _, _ = setup(
            "proc main() { while (true) { int t = 1; print(t); } }"
        )
        loop = main_stmt(program, 0)
        stmts = list(ast.walk_statements(loop))
        assert region_declared(stmts) == {"t"}


class TestReachingDefinitions:
    def du_edges(self, source):
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        cfg = build_cfg(program.proc("main"))
        return cfg, reaching_definitions(cfg, summaries)

    def test_straight_line_def_use(self):
        cfg, reaching = self.du_edges("proc main() { int a = 1; int b = a + 1; }")
        edges = reaching.du_edges()
        # b's use of a must come from a's declaration node.
        a_node = next(
            n for n in cfg.nodes.values() if n.stmt is not None and "int a" in n.label
        )
        b_node = next(
            n for n in cfg.nodes.values() if n.stmt is not None and "int b" in n.label
        )
        assert (a_node.id, b_node.id, "a") in edges

    def test_redefinition_kills(self):
        cfg, reaching = self.du_edges(
            "proc main() { int a = 1; a = 2; int b = a; }"
        )
        edges = reaching.du_edges()
        first = next(n for n in cfg.nodes.values() if n.label == "int a = 1;")
        second = next(n for n in cfg.nodes.values() if n.label == "a = 2;")
        b_node = next(n for n in cfg.nodes.values() if n.label == "int b = a;")
        assert (second.id, b_node.id, "a") in edges
        assert (first.id, b_node.id, "a") not in edges

    def test_branch_merges_definitions(self):
        cfg, reaching = self.du_edges(
            "proc main() { int a = 1; if (a > 0) { a = 2; } print(a); }"
        )
        edges = reaching.du_edges()
        decl = next(n for n in cfg.nodes.values() if n.label == "int a = 1;")
        reassign = next(n for n in cfg.nodes.values() if n.label == "a = 2;")
        use = next(n for n in cfg.nodes.values() if "print" in n.label)
        assert (decl.id, use.id, "a") in edges
        assert (reassign.id, use.id, "a") in edges

    def test_loop_carried_dependence(self):
        cfg, reaching = self.du_edges(
            "proc main() { int s = 0; while (s < 5) { s = s + 1; } }"
        )
        edges = reaching.du_edges()
        update = next(n for n in cfg.nodes.values() if n.label == "s = (s + 1);")
        # The update reads its own previous iteration's definition.
        assert (update.id, update.id, "s") in edges

    def test_array_writes_are_weak_updates(self):
        cfg, reaching = self.du_edges(
            "proc main() { int a[3]; a[0] = 1; a[1] = 2; print(a[0]); }"
        )
        edges = reaching.du_edges()
        w0 = next(n for n in cfg.nodes.values() if n.label == "a[0] = 1;")
        w1 = next(n for n in cfg.nodes.values() if n.label == "a[1] = 2;")
        use = next(n for n in cfg.nodes.values() if "print" in n.label)
        # Both element writes reach the read (no strong kill on arrays).
        assert (w0.id, use.id, "a") in edges
        assert (w1.id, use.id, "a") in edges

    def test_entry_definition_for_parameters(self):
        program = parse("func int f(int p) { return p + 1; }\nproc main() { }")
        table = check_program(program)
        summaries = compute_summaries(program, table)
        cfg = build_cfg(program.proc("f"))
        reaching = reaching_definitions(cfg, summaries)
        edges = reaching.du_edges()
        ret = next(n for n in cfg.nodes.values() if "return" in n.label)
        assert (cfg.entry, ret.id, "p") in edges


class TestCallEffectSubexpressions:
    """Regression: calls nested in array subscripts and statement argument
    lists must contribute their interprocedural REF/MOD effects, exactly
    like calls in a plain right-hand side."""

    CALLS = """
shared int SR;
shared int SW;
func int probe(int x) { SW = SW + x; return SR + x; }
"""

    def test_index_target_subscript_call_effects(self):
        program, _, summaries = setup(
            self.CALLS + "proc main() { int a[4]; a[probe(1)] = 0; }"
        )
        stmt = main_stmt(program, 1)
        assert "SR" in stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"a", "SW"}

    def test_index_read_subscript_call_effects(self):
        program, _, summaries = setup(
            self.CALLS + "proc main() { int a[4]; int y = a[probe(1)]; }"
        )
        stmt = main_stmt(program, 1)
        assert {"a", "SR"} <= stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"y", "SW"}

    def test_print_argument_call_effects(self):
        program, _, summaries = setup(
            self.CALLS + "proc main() { print(probe(2)); }"
        )
        stmt = main_stmt(program, 0)
        assert "SR" in stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"SW"}

    def test_spawn_argument_call_effects(self):
        program, _, summaries = setup(
            self.CALLS
            + "proc worker(int k) { int t = k; }\n"
            + "proc main() { spawn worker(probe(3)); }"
        )
        stmt = main_stmt(program, 0)
        assert "SR" in stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"SW"}

    def test_return_value_call_effects(self):
        program, _, summaries = setup(
            self.CALLS + "func int g() { return probe(4); }\nproc main() { int r = g(); }"
        )
        stmt = program.proc("g").body.body[0]
        assert "SR" in stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"SW"}

    def test_assert_condition_call_effects(self):
        program, _, summaries = setup(
            self.CALLS + "proc main() { assert(probe(5) > 0); }"
        )
        stmt = main_stmt(program, 0)
        assert "SR" in stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"SW"}

    def test_nested_call_in_index_expression_of_rhs(self):
        program, _, summaries = setup(
            self.CALLS + "proc main() { int a[4]; int b = 0; a[b] = a[probe(1) + b]; }"
        )
        stmt = main_stmt(program, 2)
        assert {"a", "b", "SR"} <= stmt_uses(stmt, summaries)
        assert stmt_defs(stmt, summaries) == {"a", "SW"}
