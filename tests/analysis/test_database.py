"""Program database query tests (§4.1)."""

import pytest

from repro import compile_program
from repro.workloads import fig41_program, fig53_program


class TestIdentifierQueries:
    def test_shared_identifier(self):
        db = compile_program(fig53_program()).database
        info = db.identifier("SV")
        assert info.is_shared
        assert info.owning_proc is None
        assert info.def_sites  # SV is written in foo3
        assert all(proc == "foo3" for proc, _ in info.def_sites)

    def test_local_identifier_scoped(self):
        db = compile_program(fig53_program()).database
        info = db.identifier("a", proc="foo3")
        assert not info.is_shared
        assert info.owning_proc == "foo3"

    def test_unknown_identifier_raises(self):
        db = compile_program(fig41_program()).database
        with pytest.raises(KeyError):
            db.identifier("nonexistent")

    def test_use_sites(self):
        db = compile_program(fig53_program()).database
        uses = db.use_sites("SV")
        # SV is read in foo3 (the update) and in main (the final print).
        assert {proc for proc, _ in uses} == {"foo3", "main"}


class TestProcQueries:
    def test_ref_mod(self):
        db = compile_program(fig53_program()).database
        assert db.proc_mod("foo3") == {"SV"}
        assert db.proc_ref("foo3") == {"SV"}

    def test_callers_and_callees(self):
        db = compile_program(fig41_program()).database
        assert db.callees("main") == {"SubD"}
        assert db.callers("SubD") == {"main"}


class TestStatementQueries:
    def test_statement_text_and_label(self):
        compiled = compile_program(fig41_program())
        db = compiled.database
        node_id = db.stmt_by_label["s1"]
        assert db.statement_label(node_id) == "s1"
        assert db.statement_text(node_id)
        assert db.owner_of(node_id) in compiled.program.proc_names

    def test_call_arg_kinds_fig41(self):
        """Fig 4.1: SubD(a, b, a+b+c) — two name actuals and one expression
        actual (the fictional %3 node)."""
        db = compile_program(fig41_program()).database
        kinds = [v for v in db.call_arg_kinds.values() if len(v) == 3]
        assert ["name", "name", "expr"] in kinds
