"""Faulty-process localization: signatures, consensus, ranking, surfaces.

The contract under test: signatures are schedule-independent (identical
across scheduler seeds and engines), clean process groups localize as
clean, a seeded deviant ranks first, and the ``localize`` report is
byte-identical through the in-session command, the ``ppd localize`` CLI,
and the server verb.
"""

import json
import os
import tempfile

import pytest

from repro import Machine, compile_program, obs
from repro.analysis.localize import (
    MIN_GROUP,
    build_consensus,
    canonical_name,
    extract_signature,
    localize_record,
)
from repro.core.cli import PPDCommandLine
from repro.core.parallel_graph import ParallelDynamicGraph
from repro.runtime.persist import load_record, save_record
from repro.workloads.mpi import (
    broadcast_tree,
    master_worker,
    mpi_workload,
    ring_allreduce,
    scatter_gather,
)


def run(source, seed=0, engine="interp"):
    return Machine(compile_program(source), seed=seed, engine=engine).run()


def signatures_of(record):
    graph = ParallelDynamicGraph.from_history(record.history)
    return {
        pid: extract_signature(graph, pid, name)
        for pid, name in record.process_names.items()
    }


class TestCanonicalization:
    def test_digits_fold_to_hash(self):
        assert canonical_name("res7") == "res#"
        assert canonical_name("rank12") == "rank#"
        assert canonical_name("link0") == canonical_name("link31")
        assert canonical_name("main") == "main"

    def test_replica_signatures_are_identical(self):
        # Clean scatter/gather ranks are behavioural replicas: after
        # canonicalization their signatures agree feature by feature.
        sigs = signatures_of(run(scatter_gather(5)))
        ranks = [s for s in sigs.values() if s.group == "rank#"]
        assert len(ranks) == 5
        first = ranks[0]
        for sig in ranks[1:]:
            assert sig.ops == first.ops
            assert sig.sends == first.sends
            assert sig.recvs == first.recvs
            assert sig.work == first.work

    def test_unblock_nodes_are_excluded(self):
        # Rendezvous-free traffic still produces unblock nodes when
        # buffers fill; none may leak into a signature's op sequence.
        sigs = signatures_of(run(ring_allreduce(5)))
        for sig in sigs.values():
            assert not any(op.startswith("unblock") for op in sig.ops), sig.ops


class TestConsensusAndRanking:
    @pytest.mark.parametrize(
        "family", ["scatter_gather", "ring_allreduce", "broadcast_tree", "master_worker"]
    )
    def test_clean_group_localizes_clean(self, family):
        result = localize_record(run(mpi_workload(family, 8)))
        assert result.is_clean, [(s.pid, s.score) for s in result.top(3)]

    @pytest.mark.parametrize(
        "family,fault,member",
        [
            ("scatter_gather", "wrong_op", "rank3"),
            ("scatter_gather", "skew", "rank3"),
            ("ring_allreduce", "wrong_op", "rank3"),
            ("broadcast_tree", "extra_ack", "rank3"),
            ("broadcast_tree", "wrong_op", "rank3"),
            ("master_worker", "drop_result", "worker3"),
            ("master_worker", "skew", "worker3"),
        ],
    )
    def test_seeded_deviant_ranks_first(self, family, fault, member):
        record = run(mpi_workload(family, 8, deviant=3, fault=fault))
        result = localize_record(record)
        top = result.top(3)
        assert top, "no suspect found"
        assert top[0].name == member, [(s.name, s.score) for s in top]

    def test_extra_ack_indicts_ops_and_shape(self):
        record = run(broadcast_tree(8, deviant=3, fault="extra_ack"))
        suspect = localize_record(record).top(1)[0]
        assert suspect.features["ops"] > 0
        assert suspect.features["shape"] > 0
        assert any("extra send(ack)" in line for line in suspect.diff)

    def test_skew_indicts_work(self):
        record = run(master_worker(8, deviant=3, fault="skew"))
        suspect = localize_record(record).top(1)[0]
        assert suspect.features["work"] > 0

    def test_small_groups_are_skipped_not_judged(self):
        # Two replicas cannot out-vote each other: the group is reported
        # as skipped rather than producing arbitrary suspects.
        source = """
chan c0[1];
chan c1[1];
proc echo0() { send(c0, 1); }
proc echo1() { send(c1, 1); }
proc main() {
    spawn echo0();
    spawn echo1();
    int a = recv(c0);
    int b = recv(c1);
    join();
    print(a + b);
}
"""
        result = localize_record(run(source))
        assert 2 < MIN_GROUP
        assert result.suspects == []
        assert result.skipped == {"echo#": [1, 2], "main": [0]}
        assert "too few for a consensus" in result.render()

    def test_consensus_out_votes_the_deviant(self):
        record = run(scatter_gather(8, deviant=3, fault="skew"))
        sigs = signatures_of(record)
        members = sorted(
            (s for s in sigs.values() if s.group == "rank#"), key=lambda s: s.pid
        )
        consensus = build_consensus("rank#", members)
        # the deviant's shorter reduce loop must not drag the median down
        healthy = [s for s in members if s.name != "rank3"]
        assert consensus.work == healthy[0].work


class TestDeterminism:
    def verdicts(self, source, seed, engine):
        result = localize_record(run(source, seed=seed, engine=engine))
        return [(s.pid, s.name, round(s.score, 12)) for s in result.suspects]

    @pytest.mark.parametrize("family", ["scatter_gather", "master_worker"])
    def test_ranking_is_seed_independent(self, family):
        source = mpi_workload(family, 6, deviant=2)
        base = self.verdicts(source, 0, "interp")
        assert base == self.verdicts(source, 31, "interp")
        assert base == self.verdicts(source, 1234, "interp")

    @pytest.mark.parametrize("family", ["ring_allreduce", "broadcast_tree"])
    def test_ranking_is_engine_independent(self, family):
        source = mpi_workload(family, 6, deviant=2)
        assert self.verdicts(source, 0, "interp") == self.verdicts(source, 0, "vm")

    def test_ranking_survives_persistence(self):
        # Segment step counts are persisted, so a rehydrated record (the
        # server's save/load path) localizes identically.
        record = run(master_worker(6, deviant=4, fault="skew"))
        direct = localize_record(record)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "record.json")
            save_record(record, path)
            loaded = localize_record(load_record(path))
        assert [(s.pid, s.score) for s in direct.suspects] == [
            (s.pid, s.score) for s in loaded.suspects
        ]


class TestObsCounters:
    def test_counters_count_the_pipeline(self):
        record = run(scatter_gather(5))
        with obs.capture() as registry:
            localize_record(record)
        processes = len(record.process_names)
        assert registry.value("graph.subgraph_extractions") == processes
        assert registry.value("graph.signature_builds") == processes
        # only grouped processes are compared (main is a skipped singleton)
        assert registry.value("graph.consensus_compares") == processes - 1

    def test_zero_leak_when_disabled(self):
        record = run(scatter_gather(5))
        obs.reset()  # drop counters a prior capture() left behind
        assert not obs.is_enabled()
        localize_record(record)
        assert len(obs.registry()) == 0


class TestSurfaces:
    def test_in_session_command_formats(self):
        record = run(broadcast_tree(8, deviant=5, fault="extra_ack"))
        cli = PPDCommandLine(record, autostart=False)
        report = cli.execute("localize")
        assert "top 1 suspect(s):" in report
        assert "P6 (rank5)" in report
        body = json.loads(cli.execute("localize 2 json"))
        assert body["clean"] is False
        assert body["suspects"][0]["name"] == "rank5"
        diff = cli.execute("localize diff 6")
        assert "vs consensus of group 'rank#'" in diff
        assert "usage:" in cli.execute("localize nope")
        assert "usage:" in cli.execute("localize diff")

    def test_localize_in_help(self):
        record = run(scatter_gather(4))
        cli = PPDCommandLine(record, autostart=False)
        assert "localize" in cli.execute("help")

    def test_cli_and_session_and_server_agree(self):
        from repro.server import DebugClient, DebugService

        source = master_worker(6, deviant=1, fault="drop_result")
        record = run(source)
        local = PPDCommandLine(record, autostart=False).execute("localize 3")

        service = DebugService(port=0)
        service.start()
        try:
            with DebugClient.connect(f"{service.host}:{service.port}") as client:
                session = client.open_program(source, seed=0)
                remote = session.execute("localize 3")
                session.close()
        finally:
            service.shutdown()
        assert remote == local

    def test_ppd_localize_exit_codes(self, tmp_path, capsys):
        from repro.core.cli import main

        clean = tmp_path / "clean.pcl"
        clean.write_text(ring_allreduce(5))
        faulty = tmp_path / "faulty.pcl"
        faulty.write_text(ring_allreduce(5, deviant=2, fault="wrong_op"))

        assert main(["localize", str(clean)]) == 0
        assert "no behavioural deviant" in capsys.readouterr().out
        assert main(["localize", str(faulty), "--top", "1"]) == 1
        out = capsys.readouterr().out
        assert "rank2" in out

    def test_ppd_localize_on_record_with_json_and_diff(self, tmp_path, capsys):
        from repro.core.cli import main

        record = run(scatter_gather(6, deviant=4, fault="skew"))
        path = tmp_path / "record.json"
        save_record(record, str(path))

        assert main(["localize", str(path), "--record", "--json"]) == 1
        body = json.loads(capsys.readouterr().out)
        assert body["suspects"][0]["name"] == "rank4"

        assert main(["localize", str(path), "--record", "--diff", "5"]) == 1
        assert "rank4" in capsys.readouterr().out
