"""Control-flow graph construction tests."""

from repro.lang import parse
from repro.analysis import build_cfg
from repro.analysis.cfg import ENTRY, EXIT, PRED, STMT


def cfg_of(body: str):
    program = parse("proc main() {\n" + body + "\n}")
    return build_cfg(program.proc("main"))


def kinds(cfg):
    return [node.kind for node in cfg.nodes.values()]


def reachable(cfg, start=None):
    seen = set()
    stack = [cfg.entry if start is None else start]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(cfg.successors(node))
    return seen


class TestStraightLine:
    def test_empty_body(self):
        cfg = cfg_of("")
        assert cfg.successors(cfg.entry) == [cfg.exit]

    def test_sequence(self):
        cfg = cfg_of("int a = 1; int b = 2; print(a);")
        assert kinds(cfg).count(STMT) == 3
        assert cfg.exit in reachable(cfg)

    def test_every_node_reaches_exit(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } while (a < 5) { a = a + 1; }")
        for node in cfg.nodes:
            assert cfg.exit in reachable(cfg, node) or node == cfg.exit


class TestIf:
    def test_if_else_shape(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } else { a = 3; }")
        preds = [n for n in cfg.nodes.values() if n.kind == PRED]
        assert len(preds) == 1
        pred = preds[0]
        labels = {label for _, label in cfg.succs[pred.id]}
        assert labels == {"true", "false"}

    def test_if_without_else_false_edge_skips(self):
        cfg = cfg_of("int a = 1; if (a > 0) { a = 2; } print(a);")
        pred = next(n for n in cfg.nodes.values() if n.kind == PRED)
        false_targets = [dst for dst, label in cfg.succs[pred.id] if label == "false"]
        assert len(false_targets) == 1
        # The false edge goes directly to the print statement.
        assert cfg.nodes[false_targets[0]].kind == STMT


class TestLoops:
    def test_while_back_edge(self):
        cfg = cfg_of("int a = 0; while (a < 3) { a = a + 1; }")
        pred = next(n for n in cfg.nodes.values() if n.kind == PRED)
        # The body statement loops back to the predicate.
        body = [dst for dst, label in cfg.succs[pred.id] if label == "true"][0]
        assert pred.id in cfg.successors(body)

    def test_for_structure(self):
        cfg = cfg_of("int s = 0; for (i = 0; i < 3; i = i + 1) { s = s + i; }")
        pred = next(n for n in cfg.nodes.values() if n.kind == PRED)
        # init -> pred, body -> step -> pred.
        incoming = cfg.predecessors(pred.id)
        assert len(incoming) == 2  # init and step

    def test_break_exits_loop(self):
        cfg = cfg_of("while (true) { break; } print(1);")
        break_node = next(
            n for n in cfg.nodes.values() if n.kind == STMT and n.label == "break"
        )
        (target,) = cfg.successors(break_node.id)
        assert cfg.nodes[target].label.startswith("print")

    def test_continue_targets_while_predicate(self):
        cfg = cfg_of("int a = 0; while (a < 3) { continue; }")
        cont = next(
            n for n in cfg.nodes.values() if n.kind == STMT and n.label == "continue"
        )
        (target,) = cfg.successors(cont.id)
        assert cfg.nodes[target].kind == PRED

    def test_continue_targets_for_step(self):
        cfg = cfg_of("for (i = 0; i < 3; i = i + 1) { continue; }")
        cont = next(
            n for n in cfg.nodes.values() if n.kind == STMT and n.label == "continue"
        )
        (target,) = cfg.successors(cont.id)
        assert "i = (i + 1)" in cfg.nodes[target].label

    def test_nested_loops(self):
        cfg = cfg_of(
            "int s = 0;\n"
            "for (i = 0; i < 3; i = i + 1) {\n"
            "    for (j = 0; j < 3; j = j + 1) { s = s + 1; }\n"
            "}"
        )
        preds = [n for n in cfg.nodes.values() if n.kind == PRED]
        assert len(preds) == 2


class TestReturn:
    def test_return_connects_to_exit(self):
        program = parse("func int f() { return 1; }\nproc main() { }")
        cfg = build_cfg(program.proc("f"))
        ret = next(n for n in cfg.nodes.values() if n.kind == STMT)
        assert cfg.successors(ret.id) == [cfg.exit]

    def test_early_return_leaves_tail_unreachable(self):
        program = parse("func int f() { return 1; int x = 2; return x; }\nproc main() { }")
        cfg = build_cfg(program.proc("f"))
        live = reachable(cfg)
        dead = [n for n in cfg.nodes if n not in live]
        assert dead  # the code after the first return

    def test_entry_exit_exist(self):
        cfg = cfg_of("")
        assert cfg.nodes[cfg.entry].kind == ENTRY
        assert cfg.nodes[cfg.exit].kind == EXIT

    def test_node_of_stmt_mapping(self):
        program = parse("proc main() { int a = 1; if (a > 0) { a = 2; } }")
        cfg = build_cfg(program.proc("main"))
        from repro.lang import ast

        for stmt in ast.walk_statements(program.proc("main").body):
            if isinstance(stmt, ast.Block):
                continue
            assert stmt.node_id in cfg.node_of_stmt
