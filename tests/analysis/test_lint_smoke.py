"""Lint smoke: the repo's own workloads and examples stay lint-clean.

Intentionally-buggy demo programs keep exactly their designed findings
(bank_race races, dining philosophers' lock cycle, fig 6.1's race); every
other shipped program must produce no error-severity findings.  CI runs
this file, so a new workload or example that introduces an unexplained
finding fails the build until it is fixed or ``// lint: ok``-annotated.
"""

import importlib.util
import pathlib

import pytest

from repro import compile_program
from repro.analysis.lint import lint_compiled
from repro.workloads import (
    bank_race,
    bank_safe,
    broadcast_tree,
    buggy_average,
    compute_heavy,
    dining_philosophers,
    fib_recursive,
    fig41_program,
    fig53_program,
    fig61_program,
    master_worker,
    matrix_sum,
    nested_calls,
    pipeline,
    producer_consumer,
    ring_allreduce,
    rpc_server,
    scatter_gather,
)

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: workload/example -> the error codes its design *requires* it to flag.
EXPECTED_ERRORS = {
    "bank_race": {"race"},
    "dining_philosophers": {"lock-cycle"},
    "fig61": {"race"},
}

WORKLOADS = {
    "bank_race": bank_race(2, 2),
    "bank_safe": bank_safe(2, 2),
    "buggy_average": buggy_average(5),
    "compute_heavy": compute_heavy(3, 4),
    "dining_philosophers": dining_philosophers(3),
    "dining_philosophers_courteous": dining_philosophers(3, courteous=True),
    "fib_recursive": fib_recursive(6),
    "fig41": fig41_program(),
    "fig53": fig53_program(),
    "fig61": fig61_program(),
    "matrix_sum": matrix_sum(3),
    "nested_calls": nested_calls(),
    "pipeline": pipeline(2, 3),
    "producer_consumer": producer_consumer(4, 1),
    "rpc_server": rpc_server(),
    "mpi_scatter_gather": scatter_gather(5),
    "mpi_scatter_gather_skew": scatter_gather(5, deviant=2, fault="skew"),
    "mpi_ring_allreduce": ring_allreduce(5),
    "mpi_ring_wrong_op": ring_allreduce(5, deviant=1, fault="wrong_op"),
    "mpi_broadcast_tree": broadcast_tree(6),
    "mpi_broadcast_extra_ack": broadcast_tree(6, deviant=3, fault="extra_ack"),
    "mpi_master_worker": master_worker(4, 2),
    "mpi_master_worker_drop": master_worker(4, 2, deviant=1, fault="drop_result"),
}


def example_source(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_lints_as_designed(name):
    result = lint_compiled(compile_program(WORKLOADS[name]))
    error_codes = {d.code for d in result.errors}
    assert error_codes == EXPECTED_ERRORS.get(name, set()), result.render()


@pytest.mark.parametrize("name", ["message_pipeline", "whatif_replay"])
def test_example_sources_are_error_free(name):
    result = lint_compiled(compile_program(example_source(name)))
    assert not result.errors, result.render()


PCL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.pcl"))


def test_pcl_examples_exist():
    """The vm-parity CI job runs every examples/*.pcl under both engines."""
    assert len(PCL_EXAMPLES) >= 6, PCL_EXAMPLES


@pytest.mark.parametrize("path", PCL_EXAMPLES, ids=[p.stem for p in PCL_EXAMPLES])
def test_pcl_examples_are_error_free(path):
    result = lint_compiled(compile_program(path.read_text()))
    assert not result.errors, result.render()


def test_intended_races_not_suppressed_by_accident():
    """The designed findings stay visible — a regression that silences
    bank_race's race or dining's cycle would defeat the demos."""
    racy = lint_compiled(compile_program(bank_race(2, 2)))
    assert racy.by_code("race")
    cyclic = lint_compiled(compile_program(dining_philosophers(3)))
    assert cyclic.by_code("lock-cycle")
