"""Semantic-checker tests: every rejection rule plus the site indexes."""

import pytest

from repro.lang import SemanticError, parse
from repro.analysis import check_program


def check(source):
    return check_program(parse(source))


def rejects(source, fragment):
    with pytest.raises(SemanticError) as info:
        check(source)
    assert fragment in str(info.value)


class TestGlobals:
    def test_collects_shared(self):
        table = check("shared int SV;\nproc main() { }")
        assert table.is_shared("SV")
        assert table.shared["SV"].var_type == "int"

    def test_collects_shared_array(self):
        table = check("shared int m[4];\nproc main() { }")
        assert table.shared["m"].is_array
        assert table.shared["m"].size == 4

    def test_collects_semaphores_channels_locks(self):
        table = check("sem s = 2;\nchan c[3];\nlockvar l;\nproc main() { }")
        assert table.semaphores["s"] == 2
        assert table.channels["c"] == 3
        assert "l" in table.locks

    def test_duplicate_global_rejected(self):
        rejects("shared int x;\nsem x = 1;\nproc main() { }", "duplicate")

    def test_duplicate_proc_rejected(self):
        rejects("proc f() { }\nproc f() { }\nproc main() { }", "duplicate")

    def test_proc_shadowing_builtin_rejected(self):
        rejects("func int sqrt(int x) { return x; }\nproc main() { }", "builtin")

    def test_negative_semaphore_rejected(self):
        # The parser only accepts INT literals, so build via initial=-1 is
        # impossible from source; the checker still guards the API.
        from repro.lang import ast

        program = parse("proc main() { }")
        program.semaphores.append(
            ast.SemDecl(node_id=999, line=1, column=1, name="s", initial=-1)
        )
        with pytest.raises(SemanticError):
            check_program(program)


class TestMain:
    def test_missing_main_rejected(self):
        rejects("proc helper() { }", "no 'main'")

    def test_main_with_params_rejected(self):
        rejects("proc main(int x) { }", "no parameters")


class TestScoping:
    def test_undeclared_read_rejected(self):
        rejects("proc main() { int x = y; }", "undeclared")

    def test_undeclared_write_rejected(self):
        rejects("proc main() { y = 1; }", "undeclared")

    def test_duplicate_local_rejected(self):
        rejects("proc main() { int x; int x; }", "duplicate local")

    def test_duplicate_param_rejected(self):
        rejects("proc p(int a, int a) { }\nproc main() { }", "duplicate parameter")

    def test_local_shadows_shared(self):
        table = check("shared int x;\nproc main() { int x = 1; }")
        info = table.lookup("main", "x")
        assert not info.is_shared

    def test_shared_visible_in_proc(self):
        table = check("shared int SV;\nproc main() { SV = 1; }")
        assert table.lookup("main", "SV").is_shared

    def test_for_loop_implicit_induction_variable(self):
        table = check("proc main() { for (i = 0; i < 3; i = i + 1) { } }")
        assert table.lookup("main", "i") is not None

    def test_array_indexing_requires_array(self):
        rejects("proc main() { int x; x[0] = 1; }", "not an array")

    def test_whole_array_assignment_rejected(self):
        rejects("proc main() { int a[3]; a = 1; }", "whole array")

    def test_index_of_scalar_read_rejected(self):
        rejects("proc main() { int x; int y = x[0]; }", "not a declared array")


class TestCallsAndSync:
    def test_call_unknown_proc_rejected(self):
        rejects("proc main() { nothere(); }", "unknown procedure")

    def test_call_arity_checked(self):
        rejects(
            "func int f(int a) { return a; }\nproc main() { int x = f(1, 2); }",
            "expected 1 args",
        )

    def test_proc_in_expression_rejected(self):
        rejects(
            "proc p() { }\nproc main() { int x = p(); }",
            "where a value is required",
        )

    def test_func_must_return_value(self):
        rejects("func int f() { return; }\nproc main() { }", "must return")

    def test_proc_cannot_return_value(self):
        rejects("proc p() { return 1; }\nproc main() { }", "cannot return")

    def test_break_outside_loop_rejected(self):
        rejects("proc main() { break; }", "outside a loop")

    def test_p_on_non_semaphore_rejected(self):
        rejects("chan c;\nproc main() { P(c); }", "not a semaphore")

    def test_lock_on_non_lock_rejected(self):
        rejects("sem s;\nproc main() { lock(s); }", "not a lock")

    def test_send_on_non_channel_rejected(self):
        rejects("sem s;\nproc main() { send(s, 1); }", "not a channel")

    def test_recv_on_non_channel_rejected(self):
        rejects("sem s;\nproc main() { int x = recv(s); }", "not a channel")

    def test_spawn_unknown_rejected(self):
        rejects("proc main() { spawn ghost(); }", "unknown procedure")

    def test_spawn_func_rejected(self):
        rejects(
            "func int f() { return 1; }\nproc main() { spawn f(); }",
            "only procedures",
        )

    def test_spawn_arity_checked(self):
        rejects(
            "proc w(int a) { }\nproc main() { spawn w(); }",
            "expected 1 args",
        )


class TestSiteIndexes:
    def test_def_sites_recorded(self):
        table = check("shared int SV;\nproc main() { SV = 1; SV = 2; }")
        assert len(table.def_sites["SV"]) == 2
        assert all(proc == "main" for proc, _ in table.def_sites["SV"])

    def test_use_sites_recorded(self):
        table = check("shared int SV;\nproc main() { int x = SV + SV; }")
        assert len(table.use_sites["SV"]) == 2

    def test_decl_init_counts_as_def(self):
        table = check("proc main() { int x = 1; }")
        assert len(table.def_sites["x"]) == 1


class TestArrayExpressionHygiene:
    def test_bare_array_in_expression_rejected(self):
        rejects(
            "proc main() { int a[3]; int b = a; }",
            "where a scalar is required",
        )

    def test_bare_array_as_call_argument_rejected(self):
        rejects(
            "func int f(int x) { return x; }\n"
            "proc main() { int a[3]; int b = f(a); }",
            "where a scalar is required",
        )

    def test_array_send_rejected(self):
        rejects(
            "chan c;\nproc main() { int a[3]; send(c, a); }",
            "where a scalar is required",
        )

    def test_len_accepts_array(self):
        table = check("proc main() { int a[3]; print(len(a)); }")
        assert table.lookup("main", "a").is_array

    def test_print_accepts_array(self):
        check("proc main() { int a[2]; print(a); }")

    def test_indexing_still_fine(self):
        check("proc main() { int a[3]; int b = a[0] + a[1]; }")
