"""Property: a seeded deviant process is localized across the whole
configuration space — every family, every supported fault, any deviant
rank, any scheduler seed, both engines.

This is the paper-level claim behind ``ppd localize``: because
signatures exclude schedule artifacts, the suspect ranking is evidence
about the program, so the scheduler seed must never change the verdict.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, compile_program
from repro.analysis.localize import localize_record
from repro.workloads.mpi import MPI_FAMILIES, mpi_workload

RANKS = 6

#: (family, fault) pairs, with the group-member prefix of the proc name.
CASES = [
    (family, fault, "worker" if family == "master_worker" else "rank")
    for family in sorted(MPI_FAMILIES)
    for fault in sorted(MPI_FAMILIES[family][1])
]


def localize(family, fault, deviant, seed, engine):
    source = mpi_workload(family, RANKS, deviant=deviant, fault=fault)
    record = Machine(compile_program(source), seed=seed, engine=engine).run()
    assert record.failure is None and record.deadlock is None
    return localize_record(record)


@given(
    case=st.sampled_from(CASES),
    deviant=st.integers(min_value=1, max_value=RANKS - 1),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    engine=st.sampled_from(["interp", "vm"]),
)
@settings(max_examples=30, deadline=None)
def test_seeded_deviant_ranks_in_top_k(case, deviant, seed, engine):
    family, fault, prefix = case
    result = localize(family, fault, deviant, seed, engine)
    top = result.top(3)
    assert top, f"{family}/{fault}: no suspect at all"
    names = [suspect.name for suspect in top]
    assert f"{prefix}{deviant}" in names, (family, fault, deviant, seed, names)
    # and in fact the deviant leads the ranking at this scale
    assert names[0] == f"{prefix}{deviant}", (family, fault, deviant, seed, names)


@given(
    family=st.sampled_from(sorted(MPI_FAMILIES)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    engine=st.sampled_from(["interp", "vm"]),
)
@settings(max_examples=15, deadline=None)
def test_clean_runs_stay_clean(family, seed, engine):
    source = mpi_workload(family, RANKS)
    record = Machine(compile_program(source), seed=seed, engine=engine).run()
    result = localize_record(record)
    assert result.is_clean, [(s.name, s.score) for s in result.top(3)]
