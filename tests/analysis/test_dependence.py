"""Static program dependence graph tests (§4.1)."""

from repro.lang import parse
from repro.analysis import CONTROL, DATA, FLOW, build_static_graph
from repro.workloads import fig41_program


def graph_of(source, proc="main"):
    return build_static_graph(parse(source)).proc_graph(proc)


class TestStaticGraph:
    def test_flow_edges_mirror_cfg(self):
        graph = graph_of("proc main() { int a = 1; int b = 2; }")
        flow = graph.edges_of_kind(FLOW)
        cfg_edge_count = sum(len(succ) for succ in graph.cfg.succs.values())
        assert len(flow) == cfg_edge_count

    def test_data_edges_exist(self):
        graph = graph_of("proc main() { int a = 1; int b = a + 1; }")
        data = graph.edges_of_kind(DATA)
        assert any(e.label == "a" for e in data)

    def test_control_edges_exist(self):
        graph = graph_of("proc main() { int a = 1; if (a > 0) { a = 2; } }")
        control = graph.edges_of_kind(CONTROL)
        assert any(e.label == "true" for e in control)

    def test_data_deps_into_node(self):
        graph = graph_of("proc main() { int a = 1; int b = a; int c = a + b; }")
        c_node = next(
            n for n in graph.cfg.nodes.values() if n.label == "int c = (a + b);"
        )
        incoming_vars = {e.label for e in graph.data_deps_into(c_node.id)}
        assert incoming_vars == {"a", "b"}

    def test_whole_program_builds_per_proc_graphs(self):
        static = build_static_graph(parse(fig41_program()))
        assert set(static.procs) == {"SubD", "main"}

    def test_summaries_attached(self):
        source = (
            "shared int SV;\nfunc int f(int x) { SV = x; return x; }\n"
            "proc main() { int a = f(1); }"
        )
        static = build_static_graph(parse(source))
        assert static.summaries["f"].mod == {"SV"}
        assert static.call_graph.calls["main"] == {"f"}

    def test_interprocedural_data_dep_at_call_site(self):
        source = """
shared int SV;
func int f(int x) { return SV + x; }
proc main() { SV = 5; int a = f(1); print(a); }
"""
        graph = graph_of(source)
        call_node = next(
            n for n in graph.cfg.nodes.values() if "f(1)" in n.label
        )
        incoming = {e.label for e in graph.data_deps_into(call_node.id)}
        # The call reads SV through f's REF summary.
        assert "SV" in incoming
