"""Live-variable analysis tests, and its effect on prelog sets."""

from repro import compile_program, Machine
from repro.analysis import (
    build_cfg,
    check_program,
    compute_summaries,
    live_variables,
)
from repro.compiler import EBlockPolicy
from repro.core import EmulationPackage
from repro.lang import parse
from repro.runtime import build_interval_index


def liveness_of(source, proc="main"):
    program = parse(source)
    table = check_program(program)
    summaries = compute_summaries(program, table)
    cfg = build_cfg(program.proc(proc))
    return cfg, live_variables(cfg, summaries)


def stmt_node(cfg, fragment):
    return next(
        n.id for n in cfg.nodes.values() if n.stmt is not None and fragment in n.label
    )


class TestLiveness:
    def test_read_before_write_is_live(self):
        cfg, live = liveness_of("proc main() { int a = 1; int b = a + 1; print(b); }")
        b_decl = stmt_node(cfg, "int b")
        assert "a" in live.live_in[b_decl]

    def test_dead_after_last_use(self):
        cfg, live = liveness_of("proc main() { int a = 1; int b = a + 1; print(b); }")
        print_node = stmt_node(cfg, "print")
        assert "a" not in live.live_in[print_node]
        assert "b" in live.live_in[print_node]

    def test_overwritten_before_read_is_dead(self):
        cfg, live = liveness_of(
            "proc main() { int a = 1; a = 2; print(a); }"
        )
        reassign = stmt_node(cfg, "a = 2")
        # Before 'a = 2', the old value of a is dead.
        assert "a" not in live.live_in[reassign]

    def test_branch_makes_variable_live(self):
        cfg, live = liveness_of(
            """
proc main() {
    int a = 1;
    int b = 2;
    if (a > 0) { print(b); }
}
"""
        )
        pred = stmt_node(cfg, "if")
        assert {"a", "b"} <= live.live_in[pred]

    def test_loop_keeps_carried_variables_live(self):
        cfg, live = liveness_of(
            "proc main() { int s = 0; int i = 0; "
            "while (i < 3) { s = s + 1; i = i + 1; } print(s); }"
        )
        pred = stmt_node(cfg, "while")
        assert {"s", "i"} <= live.live_in[pred]

    def test_array_writes_keep_array_live(self):
        cfg, live = liveness_of(
            "proc main() { int a[3]; a[0] = 1; a[1] = 2; print(a[0]); }"
        )
        second_write = stmt_node(cfg, "a[1]")
        assert "a" in live.live_in[second_write]


LOOP_WITH_DEAD_LOCAL = """
proc main() {
    int dead = 999;
    int s = 0;
    for (i = 0; i < 4; i = i + 1) {
        s = s + i;
    }
    dead = s;
    print(dead);
}
"""


class TestLivePrelogs:
    def _loop_block(self, live: bool):
        policy = EBlockPolicy(loop_block_min_stmts=1, live_prelogs=live)
        compiled = compile_program(LOOP_WITH_DEAD_LOCAL, policy=policy)
        (block,) = compiled.eblocks.loop_blocks.values()
        return compiled, block

    def test_conservative_prelog_keeps_everything_used(self):
        _, block = self._loop_block(live=False)
        assert "s" in block.prelog_locals

    def test_liveness_keeps_live_in_locals_only(self):
        _, block = self._loop_block(live=True)
        assert "s" in block.prelog_locals  # read in the loop before rewrite
        assert "dead" not in block.prelog_locals

    def test_live_prelogs_shrink_log(self):
        # ``scratch`` is used inside the loop, so the conservative USED set
        # prelogs it — but every iteration writes it before reading, so it
        # is dead at loop entry and liveness drops it from the prelog.
        source = """
proc main() {
    int scratch = 111;
    int scratch2 = 222;
    int s = 0;
    for (i = 0; i < 4; i = i + 1) {
        scratch = i * 2;
        scratch2 = scratch + 1;
        s = s + scratch2;
    }
    print(s);
}
"""
        fat = Machine(
            compile_program(source, policy=EBlockPolicy(loop_block_min_stmts=1)),
            seed=0,
            mode="logged",
        ).run()
        lean = Machine(
            compile_program(
                source, policy=EBlockPolicy(loop_block_min_stmts=1, live_prelogs=True)
            ),
            seed=0,
            mode="logged",
        ).run()
        assert lean.log_bytes() < fat.log_bytes()
        assert lean.output == fat.output

    def test_replay_fidelity_with_live_prelogs(self):
        policy = EBlockPolicy(
            loop_block_min_stmts=1,
            split_proc_min_stmts=4,
            split_chunk_stmts=3,
            live_prelogs=True,
        )
        compiled = compile_program(LOOP_WITH_DEAD_LOCAL, policy=policy)
        record = Machine(compiled, seed=0, mode="logged").run()
        assert record.output[0][1] == "6"
        emulation = EmulationPackage(record)
        base = 0
        for info in build_interval_index(record.logs[0]).values():
            result = emulation.replay(0, info.interval_id, uid_base=base)
            base += len(result.events) + 1
            assert not result.halted, (info.block_kind, result.diagnostics)
            assert not [d for d in result.diagnostics if "divergence" in d]
