"""Call-graph and interprocedural REF/MOD summary tests."""

from repro.lang import parse
from repro.analysis import build_call_graph, check_program, compute_summaries


def summaries_of(source):
    program = parse(source)
    table = check_program(program)
    graph = build_call_graph(program)
    return graph, compute_summaries(program, table, graph)


class TestCallGraph:
    def test_direct_calls(self):
        graph, _ = summaries_of(
            """
func int g(int x) { return x; }
func int f(int x) { return g(x); }
proc main() { int a = f(1); }
"""
        )
        assert graph.calls["main"] == {"f"}
        assert graph.calls["f"] == {"g"}
        assert graph.callers["g"] == {"f"}

    def test_leaf_detection(self):
        graph, _ = summaries_of(
            "func int g(int x) { return x; }\nproc main() { int a = g(1); }"
        )
        assert graph.is_leaf("g")
        assert not graph.is_leaf("main")

    def test_spawns_tracked_separately(self):
        graph, _ = summaries_of(
            "proc w() { }\nproc main() { spawn w(); join(); }"
        )
        assert graph.spawns["main"] == {"w"}
        assert graph.calls["main"] == set()
        assert graph.is_leaf("main")  # spawn is not a call

    def test_reachability_includes_spawns(self):
        graph, _ = summaries_of(
            """
func int h(int x) { return x; }
proc w() { int a = h(1); }
proc main() { spawn w(); join(); }
"""
        )
        assert graph.reachable_from("main") == {"main", "w", "h"}

    def test_call_sites_recorded(self):
        graph, _ = summaries_of(
            "func int g(int x) { return x; }\nproc main() { int a = g(1) + g(2); }"
        )
        assert list(graph.call_sites.values()) == ["g", "g"]


class TestSummaries:
    def test_direct_ref_mod(self):
        _, summaries = summaries_of(
            """
shared int SV;
shared int OTHER;
proc main() { SV = OTHER + 1; }
"""
        )
        assert summaries["main"].mod == {"SV"}
        assert summaries["main"].ref == {"OTHER"}

    def test_write_only_shared_not_in_ref(self):
        _, summaries = summaries_of("shared int SV;\nproc main() { SV = 1; }")
        assert summaries["main"].ref == set()
        assert summaries["main"].mod == {"SV"}

    def test_transitive_propagation(self):
        _, summaries = summaries_of(
            """
shared int SV;
func int leaf(int x) { SV = SV + x; return SV; }
func int middle(int x) { return leaf(x); }
proc main() { int a = middle(1); }
"""
        )
        for name in ("leaf", "middle", "main"):
            assert summaries[name].ref == {"SV"}
            assert summaries[name].mod == {"SV"}

    def test_recursion_terminates(self):
        _, summaries = summaries_of(
            """
shared int SV;
func int f(int n) {
    if (n <= 0) { return SV; }
    return f(n - 1);
}
proc main() { int a = f(3); }
"""
        )
        assert summaries["f"].ref == {"SV"}

    def test_mutual_recursion(self):
        _, summaries = summaries_of(
            """
shared int A;
shared int B;
func int even(int n) { if (n == 0) { return A; } return odd(n - 1); }
func int odd(int n) { if (n == 0) { return B; } return even(n - 1); }
proc main() { int x = even(4); }
"""
        )
        assert summaries["even"].ref == {"A", "B"}
        assert summaries["odd"].ref == {"A", "B"}

    def test_local_shadowing_excludes_shared(self):
        _, summaries = summaries_of(
            """
shared int SV;
proc main() { int SV = 1; SV = SV + 1; }
"""
        )
        assert summaries["main"].ref == set()
        assert summaries["main"].mod == set()

    def test_spawn_does_not_propagate_effects(self):
        _, summaries = summaries_of(
            """
shared int SV;
proc w() { SV = 1; }
proc main() { spawn w(); join(); }
"""
        )
        # The spawned process's shared accesses are covered by its own
        # e-block logs and sync units, not the spawner's USED/DEFINED.
        assert summaries["main"].mod == set()

    def test_input_flag_propagates(self):
        _, summaries = summaries_of(
            """
func int read_one(int x) { return input(); }
proc main() { int a = read_one(0); }
"""
        )
        assert summaries["read_one"].reads_input
        assert summaries["main"].reads_input

    def test_sync_flag(self):
        _, summaries = summaries_of(
            """
sem s = 1;
func int quiet(int x) { return x; }
proc noisy() { P(s); V(s); }
proc main() { int a = quiet(1); spawn noisy(); join(); }
"""
        )
        assert not summaries["quiet"].has_sync
        assert summaries["noisy"].has_sync
        # main itself has sync (spawn/join are sync statements).
        assert summaries["main"].has_sync

    def test_array_element_write_is_mod(self):
        _, summaries = summaries_of(
            "shared int m[4];\nproc main() { m[2] = 7; }"
        )
        assert summaries["main"].mod == {"m"}
        # Writing an element reads the array base (address), so REF too.
        assert summaries["main"].ref == {"m"}
