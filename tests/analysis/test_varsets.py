"""Variable-set representation tests, including the E8 equivalence property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import BitVarSet, FrozenVarSet, VariableRegistry

NAMES = [f"v{i}" for i in range(24)]
name_sets = st.sets(st.sampled_from(NAMES), max_size=10)


class TestBitVarSet:
    def test_membership(self):
        reg = VariableRegistry()
        s = BitVarSet(reg, ["a", "b"])
        assert "a" in s and "b" in s and "c" not in s

    def test_union_intersection_difference(self):
        reg = VariableRegistry()
        s1 = BitVarSet(reg, ["a", "b"])
        s2 = BitVarSet(reg, ["b", "c"])
        assert set(s1.union(s2)) == {"a", "b", "c"}
        assert set(s1.intersection(s2)) == {"b"}
        assert set(s1.difference(s2)) == {"a"}

    def test_intersects(self):
        reg = VariableRegistry()
        assert BitVarSet(reg, ["x"]).intersects(BitVarSet(reg, ["x", "y"]))
        assert not BitVarSet(reg, ["x"]).intersects(BitVarSet(reg, ["y"]))

    def test_len_and_bool(self):
        reg = VariableRegistry()
        assert len(BitVarSet(reg, ["a", "b", "c"])) == 3
        assert not BitVarSet(reg)
        assert BitVarSet(reg, ["a"])

    def test_add_is_persistent(self):
        reg = VariableRegistry()
        s = BitVarSet(reg, ["a"])
        s2 = s.add("b")
        assert "b" not in s and "b" in s2

    def test_hash_equality(self):
        reg = VariableRegistry()
        assert BitVarSet(reg, ["a", "b"]) == BitVarSet(reg, ["b", "a"])
        assert hash(BitVarSet(reg, ["a"])) == hash(BitVarSet(reg, ["a"]))


class TestRegistry:
    def test_interning_is_stable(self):
        reg = VariableRegistry(["a", "b"])
        assert reg.intern("a") == 0
        assert reg.intern("c") == 2
        assert reg.name_of(1) == "b"
        assert len(reg) == 3

    def test_contains(self):
        reg = VariableRegistry(["a"])
        assert "a" in reg and "z" not in reg


@given(name_sets, name_sets)
@settings(max_examples=200, deadline=None)
def test_representations_agree(names_a, names_b):
    """E8 soundness: both representations implement the same set algebra."""
    reg = VariableRegistry(NAMES)
    bit_a, bit_b = BitVarSet(reg, names_a), BitVarSet(reg, names_b)
    frz_a, frz_b = FrozenVarSet(reg, names_a), FrozenVarSet(reg, names_b)

    assert set(bit_a.union(bit_b)) == set(frz_a.union(frz_b)) == names_a | names_b
    assert set(bit_a.intersection(bit_b)) == names_a & names_b
    assert set(frz_a.intersection(frz_b)) == names_a & names_b
    assert set(bit_a.difference(bit_b)) == names_a - names_b
    assert bit_a.intersects(bit_b) == frz_a.intersects(frz_b) == bool(names_a & names_b)
    assert len(bit_a) == len(frz_a) == len(names_a)
    assert bit_a.to_frozenset() == frz_a.to_frozenset() == frozenset(names_a)


@given(name_sets)
@settings(max_examples=100, deadline=None)
def test_bitmask_roundtrip_through_mask(names):
    reg = VariableRegistry(NAMES)
    s = BitVarSet(reg, names)
    rebuilt = BitVarSet(reg, mask=s.mask)
    assert set(rebuilt) == names
    frozen = FrozenVarSet(reg, mask=s.mask)
    assert set(frozen) == names
