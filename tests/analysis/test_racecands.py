"""Static race-candidate analysis tests (repro.analysis.racecands).

The contract under test: the candidate set over-approximates the dynamic
races, so pruning the race scans with it never changes their output —
only their cost.
"""

import pytest

from repro import Machine, compile_program
from repro.analysis.racecands import (
    analyze_candidates,
    analyze_concurrency,
    analyze_locksets,
    candidates_from_compiled,
    collect_access_sites,
)
from repro.core.races import find_races_indexed, find_races_naive
from repro.lang import parse
from repro.workloads import bank_race, bank_safe, producer_consumer


def compiled(source):
    return compile_program(source)


def candidates_of(source):
    return candidates_from_compiled(compile_program(source))


RACY = """
shared int total;

proc worker(int k) {
    total = total + k;
}

proc main() {
    spawn worker(1);
    spawn worker(2);
}
"""

GUARDED = """
shared int total;
sem m = 1;

proc worker(int k) {
    P(m);
    total = total + k;
    V(m);
}

proc main() {
    spawn worker(1);
    spawn worker(2);
}
"""


class TestAccessSites:
    def test_sites_cover_reads_and_writes(self):
        program = parse(RACY)
        from repro.analysis import check_program

        sites = collect_access_sites(program, check_program(program))
        writes = [s for s in sites if s.write]
        reads = [s for s in sites if not s.write]
        assert {s.var for s in writes} == {"total"}
        assert {s.var for s in reads} == {"total"}
        # Write sites carry the statement node id, read sites the
        # expression node id — they must differ for the same access.
        assert {s.node_id for s in writes}.isdisjoint({s.node_id for s in reads})

    def test_local_shadowing_excluded(self):
        source = """
shared int x;
proc helper() { int x = 1; x = x + 1; }
proc main() { x = 2; spawn helper(); }
"""
        program = parse(source)
        from repro.analysis import check_program

        sites = collect_access_sites(program, check_program(program))
        assert all(s.proc == "main" for s in sites)


class TestConcurrency:
    def _info(self, source):
        program = parse(source)
        from repro.analysis import build_call_graph

        return analyze_concurrency(program, build_call_graph(program))

    def test_distinct_roots_are_concurrent(self):
        info = self._info(RACY)
        assert info.concurrent_procs("worker", "main")
        assert info.concurrent_procs("worker", "worker")  # spawned twice

    def test_single_instance_root_not_self_concurrent(self):
        info = self._info("proc helper() { int t = 0; } proc main() { spawn helper(); }")
        assert not info.concurrent_procs("main", "main")
        assert not info.concurrent_procs("helper", "helper")
        assert info.concurrent_procs("helper", "main")

    def test_spawn_in_loop_is_multi_instance(self):
        info = self._info(
            """
proc helper() { int t = 0; }
proc main() { int i = 0; while (i < 3) { spawn helper(); i = i + 1; } }
"""
        )
        assert "helper" in info.multi_instance_roots
        assert info.concurrent_procs("helper", "helper")

    def test_spawn_under_multi_instance_spawner_propagates(self):
        info = self._info(
            """
proc leaf() { int t = 0; }
proc mid() { spawn leaf(); }
proc main() { spawn mid(); spawn mid(); }
"""
        )
        assert "leaf" in info.multi_instance_roots


class TestLocksets:
    def _locksets(self, source):
        program = parse(source)
        from repro.analysis import build_call_graph, build_cfgs, check_program

        table = check_program(program)
        graph = build_call_graph(program)
        info = analyze_concurrency(program, graph)
        return analyze_locksets(
            program, table, graph, build_cfgs(program), set(info.procs_under_root)
        )

    def test_binary_semaphore_is_a_token(self):
        info = self._locksets(GUARDED)
        assert "m" in info.tokens

    def test_counting_semaphore_is_not_a_token(self):
        info = self._locksets(GUARDED.replace("sem m = 1;", "sem m = 2;"))
        assert "m" not in info.tokens

    def test_undisciplined_semaphore_demoted(self):
        # A V(m) without a preceding P(m) breaks mutual exclusion: the
        # token must not be trusted.
        source = """
shared int total;
sem m = 1;
proc worker() { P(m); total = 1; V(m); }
proc main() { V(m); spawn worker(); spawn worker(); }
"""
        info = self._locksets(source)
        assert "m" not in info.tokens

    def test_interprocedural_entry_lockset(self):
        source = """
shared int total;
sem m = 1;
func int bump() { total = total + 1; return total; }
proc worker() { int r = 0; P(m); r = bump(); V(m); }
proc main() { spawn worker(); spawn worker(); }
"""
        info = self._locksets(source)
        assert info.entry["bump"] == frozenset({"m"})


class TestCandidates:
    def test_unguarded_shared_write_is_candidate(self):
        cands = candidates_of(RACY)
        assert "total" in cands.variables
        assert cands.pair_count("total") >= 1

    def test_semaphore_guard_excludes(self):
        cands = candidates_of(GUARDED)
        assert "total" not in cands.variables

    def test_lock_guard_excludes(self):
        source = GUARDED.replace("sem m = 1;", "lockvar m;")
        source = source.replace("P(m);", "lock(m);").replace("V(m);", "unlock(m);")
        cands = candidates_of(source)
        assert "total" not in cands.variables

    def test_same_site_pairs_with_itself_when_multi_instance(self):
        # Two instances of worker executing the *same* write site race.
        source = """
shared int total;
proc worker() { total = 1; }
proc main() { spawn worker(); spawn worker(); }
"""
        cands = candidates_of(source)
        assert "total" in cands.variables
        assert any(
            p.site_a.node_id == p.site_b.node_id for p in cands.pairs
        )

    def test_sequential_program_has_no_candidates(self):
        cands = candidates_of("shared int x; proc main() { x = 1; x = x + 1; }")
        assert not cands.variables

    def test_explain_names_sites(self):
        bundle = compiled(RACY)
        cands = candidates_from_compiled(bundle)
        text = cands.explain("total", bundle.database)
        assert "candidate site pair" in text
        assert "worker" in text
        clean = cands.explain("nonexistent", bundle.database)
        assert "not a race candidate" in clean


class TestMayConflict:
    class FakeSegment:
        def __init__(self, reads=(), writes=()):
            self.read_sites = list(reads)
            self.write_sites = list(writes)

    def test_non_candidate_variable_never_conflicts(self):
        cands = candidates_of(GUARDED)
        seg = self.FakeSegment(writes=[(999, "total")])
        assert not cands.may_conflict(seg, seg, "total")

    def test_truncated_segment_is_conservative(self):
        cands = candidates_of(RACY)
        full = self.FakeSegment(writes=[(i, "other") for i in range(cands.site_cap)])
        other = self.FakeSegment()
        assert cands.may_conflict(full, other, "total")

    def test_unknown_site_id_is_conservative(self):
        cands = candidates_of(RACY)
        seg = self.FakeSegment(writes=[(10**6, "total")])
        assert cands.may_conflict(seg, self.FakeSegment(), "total")


class TestPrunedScansIdentical:
    """The acceptance bar: pruning never changes a scan's output."""

    @pytest.mark.parametrize(
        "source,seed",
        [
            (bank_race(2, 2), 3),
            (bank_race(3, 3), 5),
            (bank_safe(2, 2), 3),
            (bank_safe(3, 3), 7),
            (producer_consumer(4, 1), 2),
            (RACY, 1),
            (GUARDED, 1),
        ],
    )
    def test_identical_results(self, source, seed):
        bundle = compiled(source)
        record = Machine(bundle, seed=seed, mode="logged").run()
        cands = candidates_from_compiled(bundle)
        for scan in (find_races_naive, find_races_indexed):
            plain = scan(record.history)
            pruned = scan(record.history, candidates=cands)
            assert [
                (r.variable, r.kind, r.seg_id_a, r.seg_id_b, r.pid_a, r.pid_b)
                for r in plain.races
            ] == [
                (r.variable, r.kind, r.seg_id_a, r.seg_id_b, r.pid_a, r.pid_b)
                for r in pruned.races
            ]
            assert pruned.pairs_examined == plain.pairs_examined

    def test_safe_workload_actually_prunes(self):
        bundle = compiled(bank_safe(3, 3))
        record = Machine(bundle, seed=3, mode="logged").run()
        cands = candidates_from_compiled(bundle)
        pruned = find_races_indexed(record.history, candidates=cands)
        assert pruned.pairs_pruned > 0
        assert pruned.is_race_free

    def test_session_races_use_candidates(self):
        from repro import PPDSession

        bundle = compiled(bank_safe(2, 2))
        record = Machine(bundle, seed=3, mode="logged").run()
        session = PPDSession(record)
        session.start()
        scan = session.races()
        assert scan.is_race_free
        assert scan.pairs_pruned > 0
        assert session.race_candidates() is session.race_candidates()  # memoized
