"""Golden tests for the PCL lint driver (repro.analysis.lint).

One fixture program per diagnostic code, exercised through every surface:
the library API, the debugger's ``lint``/``candidates`` commands, and the
``ppd lint`` executable (text, ``--json``, ``--severity``, exit status).
"""

import json

import pytest

from repro import Machine, compile_program
from repro.analysis.lint import CODES, ERROR, WARNING, lint_compiled
from repro.core.cli import PPDCommandLine, main

#: One program per code, each constructed to trigger *that* diagnostic.
FIXTURES = {
    "race": """
shared int total;
proc worker(int k) { total = total + k; }
proc main() { spawn worker(1); spawn worker(2); }
""",
    "lock-cycle": """
shared int x;
sem a = 1;
sem b = 1;
proc p1() { P(a); P(b); x = 1; V(b); V(a); }
proc p2() { P(b); P(a); x = 2; V(a); V(b); }
proc main() { spawn p1(); spawn p2(); }
""",
    "uninit": """
proc main() {
    int c = input();
    if (c > 0) { int x = 1; }
    print(x);
}
""",
    "unsync": """
shared int total;
proc worker(int k) { total = total + k; }
proc main() { spawn worker(1); spawn worker(2); }
""",
    "dead-store": """
proc main() {
    int y = 1;
    y = 2;
    print(y);
}
""",
    "unreachable": """
func int f() {
    return 1;
    int z = 9;
}
proc main() { print(f()); }
""",
    "unused": """
proc helper(int k) { print(1); }
proc main() { spawn helper(3); }
""",
}


def lint_source(source):
    return lint_compiled(compile_program(source))


class TestEveryCodeFires:
    @pytest.mark.parametrize("code", CODES)
    def test_fixture_triggers_code(self, code):
        result = lint_source(FIXTURES[code])
        assert result.by_code(code), f"{code} not reported:\n{result.render()}"

    @pytest.mark.parametrize("code", CODES)
    def test_diagnostics_carry_positions(self, code):
        for diag in lint_source(FIXTURES[code]).by_code(code):
            assert diag.proc
            assert diag.line > 0
            assert diag.severity in (ERROR, WARNING)


class TestRendering:
    def test_race_text_golden(self):
        result = lint_source(FIXTURES["race"])
        text = result.render()
        assert "error[race]" in text
        assert "potential data race on shared 'total'" in text
        assert text.rstrip().endswith("error(s), 1 warning(s)") or "error(s)" in text

    def test_clean_program_reports_no_findings(self):
        result = lint_source("proc main() { print(1); }")
        assert result.render() == "no findings"
        assert result.render(severity=ERROR) == "no error findings"

    def test_severity_filter(self):
        result = lint_source(FIXTURES["dead-store"])
        assert result.filtered(WARNING)
        assert not result.filtered(ERROR)

    def test_json_round_trips(self):
        result = lint_source(FIXTURES["race"])
        payload = json.loads(result.to_json())
        assert payload
        for entry in payload:
            assert set(entry) == {
                "code", "severity", "proc", "node_id", "line", "message", "related",
            }
        errors_only = json.loads(result.to_json(severity=ERROR))
        assert all(e["severity"] == ERROR for e in errors_only)

    def test_diagnostics_sorted_and_deterministic(self):
        source = FIXTURES["race"]
        first = lint_source(source)
        second = lint_source(source)
        assert [d.to_dict() for d in first.diagnostics] == [
            d.to_dict() for d in second.diagnostics
        ]
        keys = [(d.proc, d.line, d.code) for d in first.diagnostics]
        assert keys == sorted(keys)


class TestSuppression:
    def test_same_line_marker_silences(self):
        source = """
shared int total;
proc worker(int k) { total = total + k; } // lint: ok
proc main() { spawn worker(1); spawn worker(2); }
"""
        result = lint_source(source)
        assert not result.by_code("race")
        assert result.suppressed > 0

    def test_preceding_line_marker_silences(self):
        source = """
proc main() {
    // lint: ok
    int y = 1;
    y = 2;
    print(y);
}
"""
        assert not lint_source(source).by_code("dead-store")

    def test_unrelated_lines_unaffected(self):
        source = FIXTURES["dead-store"].replace(
            "print(y);", "print(y); // lint: ok"
        )
        assert lint_source(source).by_code("dead-store")


class TestDebuggerCommands:
    def _cli(self, source, seed=3):
        record = Machine(compile_program(source), seed=seed, mode="logged").run()
        return PPDCommandLine(record)

    def test_lint_command_matches_library(self):
        cli = self._cli(FIXTURES["race"])
        expected = lint_compiled(
            cli.session.compiled, candidates=cli.session.race_candidates()
        )
        assert cli.execute("lint") == expected.render()
        assert cli.execute("lint json") == expected.to_json()
        assert cli.execute("lint error") == expected.render(severity=ERROR)
        assert cli.execute("lint json warning") == expected.to_json(severity=WARNING)

    def test_lint_rejects_bad_argument(self):
        cli = self._cli(FIXTURES["race"])
        assert cli.execute("lint frobnicate").startswith("usage:")

    def test_candidates_listing_and_explain(self):
        cli = self._cli(FIXTURES["race"])
        listing = cli.execute("candidates")
        assert "total" in listing
        detail = cli.execute("candidates total")
        assert "candidate site pair" in detail
        assert "worker" in detail
        assert "not a race candidate" in cli.execute("candidates nothing")

    def test_candidates_on_clean_program(self):
        cli = self._cli("proc main() { print(1); }", seed=0)
        assert cli.execute("candidates") == "no static race candidates"


class TestPpdLintExecutable:
    def _write(self, tmp_path, source):
        path = tmp_path / "program.pcl"
        path.write_text(source)
        return str(path)

    def test_exit_one_on_errors(self, tmp_path, capsys):
        path = self._write(tmp_path, FIXTURES["race"])
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "error[race]" in out

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        path = self._write(tmp_path, "proc main() { print(1); }")
        assert main(["lint", path]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_zero_on_warnings_only(self, tmp_path, capsys):
        path = self._write(tmp_path, FIXTURES["dead-store"])
        assert main(["lint", path]) == 0
        assert "warning[dead-store]" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = self._write(tmp_path, FIXTURES["race"])
        assert main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["code"] == "race" for entry in payload)

    def test_severity_warning_filter_masks_errors(self, tmp_path, capsys):
        path = self._write(tmp_path, FIXTURES["race"])
        # Asking only for warnings: errors are not *shown* and must not
        # fail the run either.
        assert main(["lint", path, "--severity", "warning"]) == 0
        out = capsys.readouterr().out
        assert "error[race]" not in out


class TestObsCounters:
    def test_lint_counters_recorded(self):
        from repro import obs

        compiled = compile_program(FIXTURES["race"])
        with obs.capture() as registry:
            result = lint_compiled(compiled)
        snapshot = registry.snapshot()
        assert snapshot.get("analysis.lint.diagnostics") == len(result.diagnostics)
        assert snapshot.get("analysis.lint.errors") == len(result.errors)
