"""E5: the simplified static graph and sync units of Fig 5.3's foo3.

The paper's figure partitions foo3 into three synchronization units: one
from ENTRY (spanning both branch levels and reaching the sync nodes and
EXIT), one from the P operation (containing the SV access), and one from
the V operation (the return path).
"""

from repro.lang import parse
from repro.analysis import (
    N_BRANCH,
    N_ENTRY,
    N_EXIT,
    N_SYNC,
    build_simplified_graph,
    check_program,
    compute_summaries,
)
from repro.workloads import fig53_program


def simplified_foo3():
    program = parse(fig53_program())
    table = check_program(program)
    summaries = compute_summaries(program, table)
    return build_simplified_graph(program.proc("foo3"), table, summaries)


class TestFig53Structure:
    def test_node_classification(self):
        graph = simplified_foo3()
        kinds = sorted(graph.node_kinds.values())
        assert kinds.count(N_ENTRY) == 1
        assert kinds.count(N_EXIT) == 1
        assert kinds.count(N_BRANCH) == 2  # the p and q predicates
        assert kinds.count(N_SYNC) == 2  # P(mutex) and V(mutex)

    def test_branching_nodes_are_predicates(self):
        graph = simplified_foo3()
        for node_id in graph.branching_nodes:
            assert "if" in graph.cfg.nodes[node_id].label

    def test_interior_statements_live_on_edges(self):
        graph = simplified_foo3()
        covered = set()
        for edge in graph.edges:
            covered.update(edge.covered)
        # The assignments to a and b (and SV) are interior statements.
        labels = {graph.cfg.nodes[c].label for c in covered}
        assert any("a = (a + 1)" in label for label in labels)
        assert any("SV" in label for label in labels)

    def test_three_sync_units(self):
        graph = simplified_foo3()
        assert len(graph.units) == 3

    def test_entry_unit_passes_through_branches(self):
        graph = simplified_foo3()
        entry_node = next(
            n for n, kind in graph.node_kinds.items() if kind == N_ENTRY
        )
        unit = graph.unit_at[entry_node]
        # The entry unit reaches edges on both sides of both predicates —
        # more edges than any other unit.
        assert len(unit.edges) == max(len(u.edges) for u in graph.units)
        # It stops at the P operation, so SV (accessed after P) is not in
        # its read set.
        assert "SV" not in unit.shared_reads

    def test_p_unit_contains_sv_access(self):
        graph = simplified_foo3()
        p_node = next(
            n
            for n, kind in graph.node_kinds.items()
            if kind == N_SYNC and graph.cfg.nodes[n].label.startswith("P(")
        )
        unit = graph.unit_at[p_node]
        assert unit.shared_reads == frozenset({"SV"})
        assert unit.shared_writes == frozenset({"SV"})

    def test_v_unit_has_no_shared_access(self):
        graph = simplified_foo3()
        v_node = next(
            n
            for n, kind in graph.node_kinds.items()
            if kind == N_SYNC and graph.cfg.nodes[n].label.startswith("V(")
        )
        unit = graph.unit_at[v_node]
        assert unit.shared_reads == frozenset()
        assert unit.shared_writes == frozenset()

    def test_units_stop_at_non_branching_nodes(self):
        graph = simplified_foo3()
        entry_node = next(n for n, k in graph.node_kinds.items() if k == N_ENTRY)
        unit = graph.unit_at[entry_node]
        p_node = next(
            n
            for n, kind in graph.node_kinds.items()
            if kind == N_SYNC and graph.cfg.nodes[n].label.startswith("P(")
        )
        # No edge of the entry unit starts at the P node (Def 5.1: cannot
        # pass through another non-branching node).
        for edge_id in unit.edges:
            edge = next(e for e in graph.edges if e.edge_id == edge_id)
            assert edge.src != p_node


class TestSyncUnitVariants:
    def test_straight_line_proc_single_unit(self):
        source = "shared int SV;\nproc main() { int a = SV; int b = a + 1; print(b); }"
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        graph = build_simplified_graph(program.proc("main"), table, summaries)
        assert len(graph.units) == 1
        (unit,) = graph.units
        assert unit.shared_reads == frozenset({"SV"})

    def test_loop_inside_unit_is_closed_over(self):
        source = """
shared int SV;
proc main() {
    int s = 0;
    while (s < 3) {
        s = s + SV;
    }
    print(s);
}
"""
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        graph = build_simplified_graph(program.proc("main"), table, summaries)
        (unit,) = graph.units  # only the ENTRY unit; loop pred is branching
        assert "SV" in unit.shared_reads
        # The unit's edge set includes the loop's back edge region.
        assert len(unit.edges) == len(graph.edges)

    def test_sync_in_loop_partitions_iterations(self):
        source = """
shared int SV;
sem m = 1;
proc main() {
    for (i = 0; i < 3; i = i + 1) {
        P(m);
        SV = SV + 1;
        V(m);
    }
}
"""
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        graph = build_simplified_graph(program.proc("main"), table, summaries)
        # Units: ENTRY, P, V — the V unit loops back through the predicate
        # and reaches the P node again (but stops there).
        assert len(graph.units) == 3
        p_unit = next(
            u
            for u in graph.units
            if graph.cfg.nodes[u.start_node].label.startswith("P(")
        )
        assert p_unit.shared_reads == frozenset({"SV"})

    def test_call_site_is_unit_boundary(self):
        source = """
shared int SV;
func int f(int x) { return x + 1; }
proc main() {
    int a = f(1);
    int b = SV + a;
    print(b);
}
"""
        program = parse(source)
        table = check_program(program)
        summaries = compute_summaries(program, table)
        graph = build_simplified_graph(program.proc("main"), table, summaries)
        # ENTRY unit ends at the call; the call starts the unit reading SV.
        call_unit = next(
            u
            for u in graph.units
            if "f(1)" in graph.cfg.nodes[u.start_node].label
        )
        assert "SV" in call_unit.shared_reads
