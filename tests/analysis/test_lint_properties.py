"""Cross-validation properties: static analysis vs dynamic behaviour.

Two contracts tie :mod:`repro.analysis` to the runtime:

1. *candidate soundness* — every race the dynamic detector reports lies
   within the static candidate set, so candidate-pruned scans are exact;
2. *uninit soundness* — a program the linter passes as free of ``uninit``
   findings never dies with ``read of undefined variable`` at runtime.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, compile_program
from repro.analysis.lint import lint_compiled
from repro.analysis.racecands import candidates_from_compiled
from repro.core.races import find_races_indexed, find_races_naive
from repro.workloads import (
    bank_race,
    bank_safe,
    buggy_average,
    dining_philosophers,
    fig53_program,
    fig61_program,
    pipeline,
    producer_consumer,
)

PARALLEL_SOURCES = [
    bank_race(2, 2),
    bank_safe(2, 2),
    fig53_program(),
    fig61_program(),
    producer_consumer(4, 1),
    pipeline(2, 3),
    dining_philosophers(3),
]

_COMPILED = {}
_CANDIDATES = {}


def compiled_for(source):
    if source not in _COMPILED:
        _COMPILED[source] = compile_program(source)
        _CANDIDATES[source] = candidates_from_compiled(_COMPILED[source])
    return _COMPILED[source], _CANDIDATES[source]


@given(st.sampled_from(PARALLEL_SOURCES), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_dynamic_races_within_static_candidates(source, seed):
    """Candidate soundness: reported races only involve candidate
    variables, at site pairs the static pass marked conflicting."""
    compiled, cands = compiled_for(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    graph_races = find_races_indexed(record.history).races
    segments = {s.seg_id: s for s in record.history.segments}
    for race in graph_races:
        assert race.variable in cands.variables
        assert cands.may_conflict(
            segments[race.seg_id_a], segments[race.seg_id_b], race.variable
        )


@given(st.sampled_from(PARALLEL_SOURCES), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_pruned_scan_exactness(source, seed):
    """Candidate pruning never adds or drops a race, either algorithm."""
    compiled, cands = compiled_for(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    for scan in (find_races_naive, find_races_indexed):
        plain = scan(record.history)
        pruned = scan(record.history, candidates=cands)
        assert [
            (r.variable, r.kind, r.seg_id_a, r.seg_id_b) for r in plain.races
        ] == [(r.variable, r.kind, r.seg_id_a, r.seg_id_b) for r in pruned.races]


UNINIT_CLEAN_SOURCES = PARALLEL_SOURCES + [buggy_average(5)]


@given(st.sampled_from(UNINIT_CLEAN_SOURCES), st.integers(0, 25))
@settings(max_examples=40, deadline=None)
def test_uninit_clean_programs_never_read_unbound(source, seed):
    """Uninit soundness on real workloads: no ``uninit`` finding means no
    ``read of undefined variable`` failure under any schedule we try."""
    compiled, _ = compiled_for(source)
    result = lint_compiled(compiled)
    assert not result.by_code("uninit"), result.render()
    inputs = [10, 20, 30, 40, 50] if "average" in source else None
    record = Machine(compiled, seed=seed, mode="logged", inputs=inputs).run()
    if record.failure is not None:
        assert "read of undefined variable" not in record.failure.message


def test_flagged_uninit_program_can_fail_at_runtime():
    """The converse sanity check: the canonical ``uninit`` fixture both
    gets flagged and actually dies on the path the linter found."""
    source = """
proc main() {
    int c = input();
    if (c > 0) { int x = 1; }
    print(x);
}
"""
    compiled = compile_program(source)
    assert lint_compiled(compiled).by_code("uninit")
    record = Machine(compiled, seed=0, mode="logged", inputs=[0]).run()
    assert record.failure is not None
    assert "undefined variable" in record.failure.message
