"""Randomised program fuzzing with hypothesis.

A generator for small, always-terminating sequential PCL programs (with
functions, branches, counted loops, shared variables, and inputs) drives
three whole-system properties:

* front-end stability — parse -> pretty -> parse is a fixpoint;
* instrumentation transparency — plain/logged/traced runs agree;
* replay fidelity — every closed interval replays without divergence and
  reproduces its recorded return value, under two e-block policies.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Machine, compile_program
from repro.compiler import EBlockPolicy
from repro.core import EmulationPackage
from repro.lang import parse, program_to_str
from repro.runtime import Postlog, build_interval_index


class ProgramBuilder:
    """Deterministically unfolds hypothesis choices into a PCL program."""

    def __init__(self, draw) -> None:
        self.draw = draw
        self.counter = itertools.count()
        self.funcs: list[str] = []
        self.func_names: list[str] = []
        #: loop counters are readable but never assignment targets —
        #: clobbering one could make a generated loop diverge
        self.loop_counters: set[str] = set()

    def fresh(self, prefix: str) -> str:
        return f"{prefix}{next(self.counter)}"

    def expr(self, vars_in_scope: list[str], depth: int = 0) -> str:
        choices = ["lit"]
        if vars_in_scope:
            choices.append("var")
        if depth < 2:
            choices.append("binop")
            if self.func_names:
                choices.append("callf")
        kind = self.draw(st.sampled_from(choices))
        if kind == "lit":
            return str(self.draw(st.integers(-9, 9)))
        if kind == "var":
            return self.draw(st.sampled_from(vars_in_scope))
        if kind == "callf":
            name = self.draw(st.sampled_from(self.func_names))
            arg = self.expr(vars_in_scope, depth + 1)
            return f"{name}({arg})"
        op = self.draw(st.sampled_from(["+", "-", "*"]))
        left = self.expr(vars_in_scope, depth + 1)
        right = self.expr(vars_in_scope, depth + 1)
        return f"({left} {op} {right})"

    def condition(self, vars_in_scope: list[str]) -> str:
        op = self.draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"{self.expr(vars_in_scope, 1)} {op} {self.expr(vars_in_scope, 1)}"

    def statements(self, vars_in_scope: list[str], depth: int, budget: int) -> list[str]:
        lines: list[str] = []
        count = self.draw(st.integers(1, 3 if depth else 5))
        for _ in range(count):
            if budget <= 0:
                break
            kind = self.draw(
                st.sampled_from(
                    ["decl", "assign", "if", "loop", "input"]
                    if depth < 2
                    else ["decl", "assign", "input"]
                )
            )
            if kind == "decl":
                name = self.fresh("v")
                lines.append(f"int {name} = {self.expr(vars_in_scope)};")
                vars_in_scope.append(name)
            elif kind == "assign" and vars_in_scope:
                assignable = [v for v in vars_in_scope if v not in self.loop_counters]
                if not assignable:
                    continue
                target = self.draw(st.sampled_from(assignable))
                lines.append(f"{target} = {self.expr(vars_in_scope)};")
            elif kind == "input":
                name = self.fresh("v")
                lines.append(f"int {name} = input();")
                vars_in_scope.append(name)
            elif kind == "if":
                cond = self.condition(vars_in_scope)
                then_body = self.statements(list(vars_in_scope), depth + 1, budget - 1)
                lines.append(f"if ({cond}) {{")
                lines.extend("    " + s for s in then_body)
                if self.draw(st.booleans()):
                    else_body = self.statements(list(vars_in_scope), depth + 1, budget - 1)
                    lines.append("} else {")
                    lines.extend("    " + s for s in else_body)
                lines.append("}")
            elif kind == "loop":
                counter = self.fresh("i")
                self.loop_counters.add(counter)
                bound = self.draw(st.integers(1, 4))
                body = self.statements(list(vars_in_scope) + [counter], depth + 1, budget - 1)
                lines.append(
                    f"for ({counter} = 0; {counter} < {bound}; "
                    f"{counter} = {counter} + 1) {{"
                )
                lines.extend("    " + s for s in body)
                lines.append("}")
        # PCL locals are function-scoped, so even fallback fillers must be
        # fresh across sibling blocks.
        return lines or [f"int {self.fresh('v')} = 0;"]

    def function(self) -> None:
        name = self.fresh("f")
        param = self.fresh("p")
        body = self.statements([param], depth=1, budget=3)
        result = self.expr([param], 1)
        self.funcs.append(
            f"func int {name}(int {param}) {{\n    "
            + "\n    ".join(body)
            + f"\n    return {result};\n}}"
        )
        self.func_names.append(name)

    def build(self) -> str:
        for _ in range(self.draw(st.integers(0, 2))):
            self.function()
        shared = "shared int S;\n" if self.draw(st.booleans()) else ""
        scope = ["S"] if shared else []
        main_body = self.statements(scope, depth=0, budget=6)
        printable = self.expr(scope or ["0"] if not scope else scope)
        return (
            shared
            + "\n".join(self.funcs)
            + "\nproc main() {\n    "
            + "\n    ".join(main_body)
            + f"\n    print({printable});\n}}\n"
        )


@st.composite
def programs(draw):
    return ProgramBuilder(draw).build()


@given(programs(), st.lists(st.integers(-50, 50), min_size=0, max_size=30))
@settings(max_examples=30, deadline=None)
def test_fuzz_front_end_roundtrip(source, inputs):
    printed = program_to_str(parse(source))
    assert program_to_str(parse(printed)) == printed


@given(programs(), st.lists(st.integers(-50, 50), min_size=0, max_size=30))
@settings(max_examples=30, deadline=None)
def test_fuzz_mode_equivalence(source, inputs):
    compiled = compile_program(source)
    plain = Machine(compiled, seed=0, mode="plain", inputs=list(inputs)).run()
    logged = Machine(compiled, seed=0, mode="logged", inputs=list(inputs)).run()
    traced = Machine(compiled, seed=0, mode="plain", trace=True, inputs=list(inputs)).run()
    assert plain.output == logged.output == traced.output
    assert plain.shared_final == logged.shared_final


@given(
    programs(),
    st.lists(st.integers(-50, 50), min_size=0, max_size=30),
    st.sampled_from(
        [
            None,
            EBlockPolicy(merge_leaf_max_stmts=8),
            EBlockPolicy(loop_block_min_stmts=1),
            EBlockPolicy(split_proc_min_stmts=3, split_chunk_stmts=2),
        ]
    ),
)
@settings(max_examples=30, deadline=None)
def test_fuzz_replay_fidelity(source, inputs, policy):
    compiled = compile_program(source, policy=policy)
    record = Machine(compiled, seed=0, mode="logged", inputs=list(inputs)).run()
    assert record.failure is None, record.failure
    emulation = EmulationPackage(record)
    index = build_interval_index(record.logs[0])
    base = 0
    for info in index.values():
        if info.is_open:
            continue
        result = emulation.replay(0, info.interval_id, uid_base=base)
        base += len(result.events) + 1
        assert not result.halted, (info.proc_name, result.diagnostics)
        assert not [d for d in result.diagnostics if "divergence" in d], result.diagnostics
        postlog = record.logs[0].entries[info.end_index]
        assert isinstance(postlog, Postlog)
        if postlog.has_retval:
            assert result.retval == postlog.retval
