"""Cross-cutting properties of the whole system, driven by hypothesis.

These are the invariants the paper's design rests on:

1. instrumentation transparency — the logged run behaves exactly like the
   plain run under the same schedule;
2. replay fidelity — the emulation package regenerates the same values the
   original execution produced, for every closed interval, under any
   e-block policy;
3. ordering soundness — edges the race detector calls *ordered* never
   disagree between the naive and indexed algorithms;
4. restoration consistency — folding the logs reproduces the final shared
   state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_program, Machine
from repro.compiler import EBlockPolicy
from repro.core import EmulationPackage, find_races_indexed, find_races_naive, restore_shared_at
from repro.runtime import Postlog, build_interval_index
from repro.workloads import (
    bank_race,
    bank_safe,
    compute_heavy,
    fib_recursive,
    fig53_program,
    fig61_program,
    nested_calls,
    pipeline,
    producer_consumer,
)

PARALLEL_SOURCES = [
    bank_race(2, 2),
    bank_safe(2, 2),
    fig53_program(),
    fig61_program(),
    producer_consumer(4, 1),
    pipeline(2, 3),
]

SEQUENTIAL_SOURCES = [
    nested_calls(),
    fib_recursive(6),
    compute_heavy(3, 4),
]

_COMPILED = {}


def compiled_for(source, policy=None):
    key = (source, policy)
    if key not in _COMPILED:
        _COMPILED[key] = compile_program(source, policy=policy)
    return _COMPILED[key]


@given(st.sampled_from(PARALLEL_SOURCES), st.integers(0, 30))
@settings(max_examples=40, deadline=None)
def test_instrumentation_transparency(source, seed):
    """Logged and plain runs with the same seed are indistinguishable."""
    compiled = compiled_for(source)
    plain = Machine(compiled, seed=seed, mode="plain").run()
    logged = Machine(compiled, seed=seed, mode="logged").run()
    assert plain.output == logged.output
    assert plain.total_steps == logged.total_steps
    assert (plain.failure is None) == (logged.failure is None)
    assert (plain.deadlock is None) == (logged.deadlock is None)
    assert plain.shared_final == logged.shared_final


@given(
    st.sampled_from(SEQUENTIAL_SOURCES),
    st.sampled_from(
        [
            None,
            EBlockPolicy(merge_leaf_max_stmts=6),
            EBlockPolicy(loop_block_min_stmts=2),
            EBlockPolicy(merge_leaf_max_stmts=4, loop_block_min_stmts=3),
        ]
    ),
)
@settings(max_examples=12, deadline=None)
def test_replay_fidelity_under_policies(source, policy):
    """Every closed interval replays without divergence, and function
    intervals reproduce their recorded return values — whatever the
    e-block policy."""
    compiled = compiled_for(source, policy)
    record = Machine(compiled, seed=0, mode="logged").run()
    assert record.failure is None
    emulation = EmulationPackage(record)
    base = 0
    for pid, log in record.logs.items():
        index = build_interval_index(log)
        for info in index.values():
            if info.is_open:
                continue
            result = emulation.replay(pid, info.interval_id, uid_base=base)
            base += len(result.events) + 1
            assert not result.halted, (info.proc_name, result.diagnostics)
            assert not [d for d in result.diagnostics if "divergence" in d]
            postlog = log.entries[info.end_index]
            assert isinstance(postlog, Postlog)
            if postlog.has_retval:
                assert result.retval == postlog.retval, info.proc_name


@given(st.sampled_from(PARALLEL_SOURCES), st.integers(0, 20))
@settings(max_examples=30, deadline=None)
def test_race_scan_equivalence(source, seed):
    """Naive all-pairs and variable-indexed scans agree exactly (E9)."""
    compiled = compiled_for(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    naive = find_races_naive(record.history)
    indexed = find_races_indexed(record.history)
    key = lambda r: (r.seg_id_a, r.seg_id_b, r.variable, r.kind)
    assert sorted(map(key, naive.races)) == sorted(map(key, indexed.races))


@given(st.sampled_from(PARALLEL_SOURCES), st.integers(0, 15))
@settings(max_examples=25, deadline=None)
def test_restoration_reaches_final_state(source, seed):
    """Folding every log snapshot reproduces the machine's final shared
    memory for completed runs."""
    compiled = compiled_for(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    if record.failure is not None or record.deadlock is not None:
        return  # final state of a halted run is mid-flight; skip
    state = restore_shared_at(record, 10**9)
    for name, value in record.shared_final.items():
        if hasattr(value, "items") and not isinstance(value, dict):
            assert state.shared[name].items == value.items
        else:
            assert state.shared[name] == value


@given(st.integers(0, 40))
@settings(max_examples=30, deadline=None)
def test_race_detection_independent_of_manifestation(seed):
    """The bank race is reported on every schedule, lucky or not."""
    compiled = compiled_for(bank_race(2, 2))
    record = Machine(compiled, seed=seed, mode="logged").run()
    scan = find_races_indexed(record.history)
    assert any(r.variable == "balance" for r in scan.races)


@given(st.sampled_from(PARALLEL_SOURCES), st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_segments_partition_sync_nodes(source, seed):
    """Internal edges chain each process's sync nodes without gaps."""
    compiled = compiled_for(source)
    record = Machine(compiled, seed=seed, mode="logged").run()
    history = record.history
    for pid, uids in history.per_process.items():
        segments = [s for s in history.segments if s.pid == pid]
        starts = [s.start_uid for s in segments]
        # Every non-final sync node starts exactly one segment.
        expected = [u for u in uids if history.nodes[u].op != "end"]
        assert starts == expected
        for segment, nxt in zip(segments, segments[1:]):
            assert segment.end_uid == nxt.start_uid
