"""Full-tracing baseline tests (E2's comparison point)."""

from repro import compile_program, Machine
from repro.baselines import run_with_full_trace
from repro.workloads import compute_heavy, fig41_program, nested_calls


class TestFullTrace:
    def test_trace_covers_every_statement(self):
        compiled = compile_program(nested_calls())
        session = run_with_full_trace(compiled, seed=0)
        kinds = {e.kind for e in session.record.tracer.events}
        assert {"stmt", "pred", "call", "enter", "ret"} <= kinds

    def test_graph_built_up_front(self):
        compiled = compile_program(fig41_program())
        session = run_with_full_trace(compiled, seed=0)
        assert session.graph.nodes
        assert any(n.kind == "subgraph" for n in session.graph.nodes.values())

    def test_trace_bytes_exceed_log_bytes(self):
        """The economics of §3.1: a full trace dwarfs the incremental log."""
        compiled = compile_program(compute_heavy(10, 10))
        full = run_with_full_trace(compiled, seed=0, build_graph=False)
        logged = Machine(compiled, seed=0, mode="logged").run()
        assert full.trace_bytes > 10 * logged.log_bytes()

    def test_event_count_scales_with_work(self):
        small = run_with_full_trace(compile_program(compute_heavy(2, 2)), build_graph=False)
        large = run_with_full_trace(compile_program(compute_heavy(8, 8)), build_graph=False)
        assert large.event_count > 4 * small.event_count

    def test_same_output_as_untraced(self):
        compiled = compile_program(nested_calls())
        traced = run_with_full_trace(compiled, seed=0, build_graph=False)
        plain = Machine(compiled, seed=0, mode="plain").run()
        assert traced.record.output == plain.output
