"""Cyclic-debugging baseline tests (§2, E12)."""

from repro import compile_program
from repro.baselines import bisect_error, probe_at

BUGGY = """
proc main() {
    int good = 0;
    int x = 1;
    x = x + 1;
    x = x * 10;
    x = x - 100;
    x = x + 1;
    print(x);
}
"""


class TestProbes:
    def test_probe_snapshots_state(self):
        compiled = compile_program(BUGGY)
        # The breakpoint fires *before* the Nth statement executes, so at
        # step 4 we see the effect of statement 3 (x = x + 1).
        probe = probe_at(compiled, 0, 4)
        assert probe.state["x"] == 2
        assert probe.steps_executed >= 3

    def test_probe_beyond_end_runs_to_completion(self):
        compiled = compile_program(BUGGY)
        probe = probe_at(compiled, 0, 10_000)
        assert probe.state == {}  # breakpoint never hit

    def test_probe_costs_full_rerun_each_time(self):
        compiled = compile_program(BUGGY)
        early = probe_at(compiled, 0, 2)
        late = probe_at(compiled, 0, 6)
        assert late.steps_executed > early.steps_executed


class TestBisection:
    def test_finds_first_bad_step(self):
        compiled = compile_program(BUGGY)
        # The "error" is x going negative, which happens at the 5th stmt.
        result = bisect_error(
            compiled, 0, lambda state: state.get("x", 0) < 0, max_step=7
        )
        assert result.first_bad_step is not None
        probe = probe_at(compiled, 0, result.first_bad_step + 1)
        assert probe.state["x"] < 0

    def test_logarithmic_probe_count(self):
        compiled = compile_program(BUGGY)
        result = bisect_error(
            compiled, 0, lambda state: state.get("x", 0) < 0, max_step=7
        )
        assert 2 <= result.executions <= 5  # ~log2(7) + initial probe

    def test_error_never_present(self):
        compiled = compile_program(BUGGY)
        result = bisect_error(
            compiled, 0, lambda state: state.get("x", 0) > 10_000, max_step=7
        )
        assert result.first_bad_step is None
        assert result.executions == 1

    def test_total_cost_accumulates(self):
        compiled = compile_program(BUGGY)
        result = bisect_error(
            compiled, 0, lambda state: state.get("x", 0) < 0, max_step=7
        )
        assert result.total_steps_executed == sum(
            p.steps_executed for p in result.probes
        )
