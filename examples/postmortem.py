#!/usr/bin/env python3
"""Post-mortem debugging from on-disk logs (§5.6: "one log file for each
process").

The execution phase and the debugging phase need not share a Python
process: run the program once with logging, save the record (source +
per-process logs + synchronization history) to disk, and open the PPD
session later against the saved file — the flowback is identical to a
live session.
"""

import os
import tempfile

from repro import Machine, PPDSession, compile_program, render_flowback
from repro.core import slice_statements
from repro.runtime import load_record, save_record
from repro.workloads import buggy_average


def execution_phase(path: str) -> None:
    print("=== execution phase (e.g. on the production machine) ===")
    compiled = compile_program(buggy_average(5))
    record = Machine(
        compiled, seed=0, mode="logged", inputs=[10, 20, 30, 40, 50]
    ).run()
    print(f"program failed: {record.failure.message}")
    save_record(record, path)
    print(f"saved {os.path.getsize(path)} bytes of logs to {path}")


def debugging_phase(path: str) -> None:
    print("\n=== debugging phase (later, elsewhere) ===")
    record = load_record(path)
    session = PPDSession(record)
    session.start()
    failure = session.failure_event()
    tree = session.flowback_expanding(failure.uid, max_depth=9)
    print(render_flowback(tree))
    print("\ndynamic slice:", ", ".join(slice_statements(tree)))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "crash.ppd.json")
        execution_phase(path)
        debugging_phase(path)


if __name__ == "__main__":
    main()
