#!/usr/bin/env python3
"""Regenerate every figure of the paper as text and Graphviz DOT.

Writes to ``figures/`` (created next to the working directory):

* Fig 4.1 — the dynamic program dependence graph of the SubD fragment,
* Fig 5.2 — the nested log intervals of SubJ/SubK,
* Fig 5.3 — the simplified static graph and sync units of foo3,
* Fig 6.1 — the parallel dynamic graph of the three-process program.

Render the ``.dot`` files with ``dot -Tpng figures/fig41.dot -o fig41.png``
wherever Graphviz is available.
"""

import os

from repro import Machine, PPDSession, compile_program
from repro.core import (
    dynamic_to_dot,
    parallel_to_dot,
    render_dynamic_fragment,
    render_parallel,
    render_simplified,
)
from repro.runtime import build_interval_index
from repro.workloads import fig41_program, fig53_program, fig61_program, nested_calls

OUT = "figures"


def write(name: str, content: str) -> None:
    path = os.path.join(OUT, name)
    with open(path, "w") as handle:
        handle.write(content + "\n")
    print(f"  wrote {path}")


def fig41() -> None:
    print("Fig 4.1: dynamic program dependence graph")
    record = Machine(compile_program(fig41_program()), seed=0, mode="logged").run()
    session = PPDSession(record)
    session.start()
    write("fig41.txt", render_dynamic_fragment(session.graph))
    write("fig41.dot", dynamic_to_dot(session.graph))


def fig52() -> None:
    print("Fig 5.2: nested log intervals")
    record = Machine(compile_program(nested_calls()), seed=0, mode="logged").run()
    index = build_interval_index(record.logs[0])
    lines = ["log intervals of process 0 (nesting by indent):"]

    def emit(interval_id: int, depth: int) -> None:
        info = index[interval_id]
        prelog = record.logs[0].entries[info.start_index]
        postlog = (
            record.logs[0].entries[info.end_index]
            if info.end_index is not None
            else None
        )
        span = (
            f"t{prelog.timestamp}..t{postlog.timestamp}"
            if postlog
            else f"t{prelog.timestamp}.. (open)"
        )
        lines.append(
            "  " * depth
            + f"I{interval_id} [{info.block_kind} {info.proc_name}] {span}"
        )
        for child in info.children:
            emit(child, depth + 1)

    for info in index.values():
        if info.parent is None:
            emit(info.interval_id, 0)
    write("fig52.txt", "\n".join(lines))


def fig53() -> None:
    print("Fig 5.3: simplified static graph + synchronization units")
    compiled = compile_program(fig53_program())
    write("fig53.txt", render_simplified(compiled.simplified["foo3"]))


def fig61() -> None:
    print("Fig 6.1: parallel dynamic graph")
    record = Machine(compile_program(fig61_program()), seed=1, mode="logged").run()
    write("fig61.txt", render_parallel(record.history, record.process_names))
    write("fig61.dot", parallel_to_dot(record.history))


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    fig41()
    fig52()
    fig53()
    fig61()
    print("done.")


if __name__ == "__main__":
    main()
