#!/usr/bin/env python3
"""Quickstart: find a bug with flowback analysis instead of print-debugging.

The target program averages five sensor readings but an off-by-one in the
summation loop drops the last one.  We:

1. compile the program (preparatory phase — static graphs, e-blocks, logs),
2. run it once with logging on (execution phase — it halts on the failed
   assertion),
3. open a PPD session (debugging phase), which replays only the e-blocks
   the investigation needs, and
4. read the flowback tree from the failure back to the loop predicate that
   caused it.
"""

from repro import Machine, PPDSession, compile_program, render_flowback
from repro.core import slice_statements
from repro.workloads import buggy_average

READINGS = [10, 20, 30, 40, 50]  # true average: 30


def main() -> None:
    print("=== 1. preparatory phase: compile ===")
    compiled = compile_program(buggy_average(values=5, expected=30))
    print(f"procedures: {compiled.program.proc_names}")
    print(f"e-blocks:   {len(compiled.eblocks.blocks)}")
    print(f"logging sites: {compiled.plan.logging_site_count()}")

    print("\n=== 2. execution phase: run with logging ===")
    record = Machine(compiled, seed=0, mode="logged", inputs=READINGS).run()
    print(f"program output: {record.output_text!r}")
    print(f"failure: {record.failure.message}")
    print(
        f"log: {record.log_entry_count()} entries, {record.log_bytes()} bytes "
        "(this is ALL the execution paid for)"
    )

    print("\n=== 3. debugging phase: open a PPD session ===")
    session = PPDSession(record)
    replay = session.start()  # replays the halting e-block only
    print(
        f"replayed interval {replay.interval_id}: {replay.event_count} events, "
        f"halted at the failure: {replay.failure_message!r}"
    )

    print("\n=== 4. flowback from the failed assertion ===")
    failure = session.failure_event()
    tree = session.flowback_expanding(failure.uid, max_depth=9)
    print(render_flowback(tree))

    print("\ndynamic slice (statements that produced the bad value):")
    print("  " + ", ".join(slice_statements(tree)))
    print(
        f"\nreplays performed: {session.replay_count()}, "
        f"events generated on demand: {session.events_generated}"
    )
    print(
        "\nReading the tree: average = 20 because total = 100, because the"
        "\nsummation chain has only four 'input ->' leaves under it — the"
        "\ngoverning predicate 'for (i < n)' executed true only 4 times."
        "\nThe bug is the loop bound at s2."
    )


if __name__ == "__main__":
    main()
