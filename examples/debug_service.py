#!/usr/bin/env python3
"""The PPD debug service, end to end, in one process.

Spins up a :class:`repro.server.DebugService` on a free port, connects a
:class:`repro.server.DebugClient` over real TCP, and debugs the paper's
Fig 6.1 race workload (P1 writes the shared variable SV around an empty
internal edge while P3 reads it, §6.1) through the wire protocol — the
same transcript ``ppd connect`` would show interactively.

Run:

    python examples/debug_service.py
"""

from repro import obs
from repro.server import DebugClient, DebugService
from repro.workloads import fig61_program

SCRIPT = [
    "where",
    "output",
    "parallel",
    "races",
    "history SV",
    "why x",
    "stats",
]


def main() -> None:
    obs.enable()  # the service's server.* counters feed 'stats obs'
    service = DebugService(port=0, max_sessions=4)
    host, port = service.start()
    print(f"debug service listening on {host}:{port}\n")

    with DebugClient.connect(f"{host}:{port}") as client:
        session = client.open_program(fig61_program(), seed=2)
        print(f"opened remote session {session.sid}: {session.info['status']}\n")
        for command in SCRIPT:
            print(f"(ppd) {command}")
            output = session.execute(command)
            if output:
                print(output)
            print()
        print("(ppd) stats obs        # includes the service's server.* counters")
        print(session.execute("stats obs"))
        session.close()

    service.shutdown()
    obs.disable()
    print("\nservice drained.")


if __name__ == "__main__":
    main()
