#!/usr/bin/env python3
"""Deadlock-cause analysis (§6): dining philosophers.

Every philosopher grabs the left fork first — a circular wait is possible.
We hunt for a schedule that deadlocks, then ask PPD to explain it: the
wait-for graph, the cycle, and each process's path to the deadlock from
the parallel dynamic graph.  Finally we show the classic fix (one
philosopher reverses the acquisition order) surviving the same schedules.
"""

from repro import Machine, analyze_deadlock, compile_program
from repro.workloads import dining_philosophers


def main() -> None:
    print("=== hunting for a deadlocking schedule (3 philosophers) ===")
    compiled = compile_program(dining_philosophers(3))
    deadlock_record = None
    for seed in range(50):
        record = Machine(compiled, seed=seed, mode="logged").run()
        if record.deadlock is not None:
            print(f"  seed {seed}: DEADLOCK after {record.total_steps} steps")
            deadlock_record = record
            break
        print(f"  seed {seed}: completed ({record.output_text})")
    assert deadlock_record is not None, "no deadlock in 50 seeds (unlucky!)"

    print("\n=== the diagnosis ===")
    report = analyze_deadlock(deadlock_record)
    print(report.describe())

    print("\n=== the fix: philosopher N-1 picks forks in reverse order ===")
    fixed = compile_program(dining_philosophers(3, courteous=True))
    for seed in range(50):
        record = Machine(fixed, seed=seed, mode="logged").run()
        assert record.deadlock is None, f"fix failed at seed {seed}"
    print("  50/50 schedules complete; every philosopher eats.")


if __name__ == "__main__":
    main()
