#!/usr/bin/env python3
"""State restoration and what-if experiments (§5.7).

"The user could change the values of variables and re-start the program
from the same point to see the effect of these changes on program
behavior."

We run a small planner that mis-sizes a budget, then:

1. restore shared memory at successive postlogs (time travel over the log),
2. replay one e-block with a modified prelog (the cheap, local experiment),
3. re-execute the whole program with a value injected mid-run under the
   *same schedule* (the global experiment) and watch the failure vanish.
"""

from repro import Machine, compile_program
from repro.core import WhatIf, restore_shared_at
from repro.runtime import Postlog, build_interval_index

SOURCE = """
shared int budget;
shared int spent;

func int cost_of(int item) {
    return item * item + 10;
}

proc main() {
    budget = 50;
    for (item = 1; item <= 4; item = item + 1) {
        spent = spent + cost_of(item);
    }
    print("spent =", spent, "of", budget);
    assert(spent <= budget);
}
"""


def main() -> None:
    compiled = compile_program(SOURCE)
    record = Machine(compiled, seed=0, mode="logged").run()
    print(f"failure: {record.failure.message}")

    print("\n=== 1. restoration: shared memory at each postlog ===")
    postlogs = sorted(
        (e for log in record.logs.values() for e in log if isinstance(e, Postlog)),
        key=lambda e: e.timestamp,
    )
    for postlog in postlogs:
        state = restore_shared_at(record, postlog.timestamp)
        print(
            f"  t={postlog.timestamp:3d}: budget={state.shared['budget']:4d} "
            f"spent={state.shared['spent']:4d}"
        )

    whatif = WhatIf(record)

    print("\n=== 2. local what-if: replay cost_of(4) with a cheaper item ===")
    index = build_interval_index(record.logs[0])
    cost_intervals = [i for i in index.values() if i.proc_name == "cost_of"]
    last_cost = max(cost_intervals, key=lambda i: i.start_index)
    baseline, modified = whatif.replay_with_changes(
        0, last_cost.interval_id, {"item": 1}
    )
    print(f"  recorded: cost_of(4) = {baseline.retval}")
    print(f"  modified: cost_of(1) = {modified.retval}")

    print("\n=== 3. global what-if: inject budget = 500 before the loop ===")
    fixed = whatif.rerun_with_injection(0, 2, {"budget": 500})
    print(f"  rerun output : {fixed.output_text!r}")
    print(f"  rerun failure: {fixed.failure}")
    assert fixed.failure is None

    print("\nSame schedule, one changed value, failure gone — the §5.7 loop.")


if __name__ == "__main__":
    main()
