#!/usr/bin/env python3
"""Race hunting with the parallel dynamic graph (§6).

Two depositors increment a shared bank balance without synchronization.
Depending on the schedule, updates get lost — but PPD flags the race on
*every* schedule, because unordered conflicting access is a property of
the parallel dynamic graph, not of the values observed.

We then fix the program with a semaphore and show the scan come back clean.
"""

from repro import Machine, compile_program, render_parallel
from repro.core import find_races_indexed, find_races_naive
from repro.workloads import bank_race, bank_safe


def scan(source: str, seeds: range) -> None:
    compiled = compile_program(source)
    for seed in seeds:
        record = Machine(compiled, seed=seed, mode="logged").run()
        result = find_races_indexed(record.history)
        lost = record.failure is not None
        status = "lost updates!" if lost else "output looks fine"
        verdict = "RACE DETECTED" if result.races else "race-free"
        print(f"  seed {seed:2d}: {status:18s} -> {verdict}")
        for race in result.races:
            print(
                f"           {race.kind} on {race.variable!r}: "
                f"P{race.pid_a} (edge {race.seg_id_a}) vs "
                f"P{race.pid_b} (edge {race.seg_id_b})"
            )


def main() -> None:
    print("=== racy bank: two depositors, no mutex ===")
    scan(bank_race(2, 3), range(6))

    print("\n=== the evidence: one schedule's parallel dynamic graph ===")
    compiled = compile_program(bank_race(2, 2))
    record = Machine(compiled, seed=3, mode="logged").run()
    print(render_parallel(record.history, record.process_names))

    print("\n=== detection cost: naive all-pairs vs variable-indexed (§7) ===")
    naive = find_races_naive(record.history)
    indexed = find_races_indexed(record.history)
    print(f"  naive   : {naive.order_checks} happened-before checks")
    print(f"  indexed : {indexed.order_checks} happened-before checks")
    print(f"  same races found: {len(naive.races)} == {len(indexed.races)}")

    print("\n=== fixed bank: the same deposits behind P(mutex)/V(mutex) ===")
    scan(bank_safe(2, 3), range(6))


if __name__ == "__main__":
    main()
