#!/usr/bin/env python3
"""The PPD command-line debugger (§7's "easy-to-use interface").

Run with no arguments for a scripted demonstration session over the buggy
averaging program, or with ``--interactive`` for a live REPL:

    python examples/ppd_cli.py
    python examples/ppd_cli.py --interactive
"""

import sys

from repro import Machine, compile_program
from repro.core import PPDCommandLine, interactive_loop
from repro.workloads import buggy_average


def make_record():
    compiled = compile_program(buggy_average(5))
    return Machine(
        compiled, seed=0, mode="logged", inputs=[10, 20, 30, 40, 50]
    ).run()


DEMO_SCRIPT = [
    "where",
    "output",
    "stats",
    "graph 6",
    "expandable",
    "why average",
    "why total",
    "races",
    "history SV",
    "restore 9999",
    "quit",
]


def main() -> None:
    record = make_record()
    if "--interactive" in sys.argv:
        interactive_loop(record)
        return
    cli = PPDCommandLine(record)
    for command, output in cli.run_script(DEMO_SCRIPT):
        print(f"(ppd) {command}")
        if output:
            print(output)
        print()


if __name__ == "__main__":
    main()
