#!/usr/bin/env python3
"""Rendezvous and RPC (§6.2.2-6.2.3): debugging a client/server exchange.

The paper extends synchronization edges beyond semaphores and messages to
the Ada rendezvous and RPC: an edge from the call to the accept, an edge
from the reply to the caller's return, and a zero-event internal edge on
the suspended caller.  This example runs an RPC service, shows those
edges, and uses flowback across a rendezvous: why did a client get the
answer it got?
"""

from repro import Machine, PPDSession, compile_program, render_flowback, render_parallel
from repro.runtime import build_interval_index
from repro.workloads import rpc_server


def main() -> None:
    compiled = compile_program(rpc_server(clients=2, requests=1))
    record = Machine(compiled, seed=4, mode="logged").run()
    print(f"program output: {record.output_text!r}")

    print("\n=== the parallel dynamic graph (call/accept/reply/return) ===")
    print(render_parallel(record.history, record.process_names))

    print("\n=== flowback inside a client, across the rendezvous ===")
    session = PPDSession(record)
    client_pid = next(
        pid for pid, name in record.process_names.items() if name == "client"
    )
    index = build_interval_index(record.logs[client_pid])
    client_interval = next(i for i in index.values() if i.proc_name == "client")
    result = session.expand_interval(client_pid, client_interval.interval_id)
    answer_node = next(
        n
        for n in session.graph.nodes.values()
        if n.pid == client_pid and n.label.startswith("answer")
    )
    print(render_flowback(session.flowback(answer_node.uid, max_depth=4)))
    print(
        "\nThe answer's value chains back to the rendezvous node"
        "\n('call:compute -> ...'), whose reply the server computed —"
        "\nthe reply value was captured in the client's log, so no server"
        "\nre-execution was needed to show it."
    )

    print("\n=== and inside the server: replay one accept body ===")
    server_pid = next(
        pid for pid, name in record.process_names.items() if name == "server"
    )
    server_index = build_interval_index(record.logs[server_pid])
    server_interval = next(i for i in server_index.values())
    server_replay = session.expand_interval(server_pid, server_interval.interval_id)
    accepts = [e for e in server_replay.events if e.label == "accept"]
    print(f"server replay regenerated {len(accepts)} accept events:")
    for event in accepts:
        print(f"  accept compute{tuple(event.value)}")


if __name__ == "__main__":
    main()
