#!/usr/bin/env python3
"""Cross-process flowback through messages and shared memory (§5.6, §6.2).

A writer process stores a value into shared memory and signals a reader,
which picks the value up, transforms it, and ships it to main — where an
assertion about the result fails.  The cause lives in *another process*,
so the flowback has to cross process boundaries:

1. replaying the reader shows its computation depending on an imported
   shared value (an EXTERN node);
2. the PPD Controller resolves the extern through the parallel dynamic
   graph to the internal edge of the writer that produced it;
3. chasing the writer replays *its* e-block and pins the exact assignment.
"""

from repro import Machine, PPDSession, compile_program, render_flowback, render_parallel

SOURCE = """
shared int SV;
sem ready = 0;
chan out;

proc writer() {
    int base = 40;
    int adjusted = base * 3;    // the bug: should be base + 2
    SV = adjusted;              // lint: ok -- ordered by V(ready)/P(ready)
    V(ready);
}

proc reader() {
    P(ready);
    int x = SV + 1;
    send(out, x);
}

proc main() {
    spawn writer();
    spawn reader();
    int r = recv(out);
    join();
    print("r =", r);
    assert(r == 43);
}
"""


def main() -> None:
    compiled = compile_program(SOURCE)
    record = Machine(compiled, seed=2, mode="logged").run()
    print(f"failure: {record.failure.message}")

    print("\n=== the parallel dynamic graph ===")
    print(render_parallel(record.history, record.process_names))

    session = PPDSession(record)

    print("\n=== step 1: replay the reader ===")
    reader_pid = next(
        pid for pid, name in record.process_names.items() if name == "reader"
    )
    reader_interval = next(iter(session.emulation.indexes[reader_pid]))
    result = session.expand_interval(reader_pid, reader_interval)
    extern = next(e for e in result.externs if e.var == "SV")
    print(
        f"the reader's x = SV + 1 reads SV = {extern.value}, imported at its "
        f"sync-unit boundary (extern node #{extern.event_uid})"
    )

    print("\n=== step 2: resolve the import across processes (§5.6) ===")
    resolution = session.resolve_extern(extern.event_uid, chase=True)
    producer = resolution.candidates[0]
    print(
        f"producer: internal edge {producer.segment.seg_id} of "
        f"P{producer.pid} ({record.process_names[producer.pid]}), "
        f"race: {resolution.is_race}"
    )

    print("\n=== step 3: flowback inside the writer ===")
    writer_node = resolution.writer_node
    print(f"the writing event: {writer_node.label} = {writer_node.value}")
    tree = session.flowback(writer_node.uid, max_depth=6)
    print(render_flowback(tree))
    print(
        "\nThe chain bottoms out at 'adjusted = base * 3' — the writer's"
        "\narithmetic bug, found without re-running the program."
    )


if __name__ == "__main__":
    main()
